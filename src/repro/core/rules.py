"""Graph-level application of the Ω / Ψ transformation rules on a MIG.

Each function in this module inspects one majority node of a
:class:`~repro.core.mig.Mig`, checks whether one of the paper's
transformations applies, builds the rewritten cone with
:meth:`~repro.core.mig.Mig.maj` (so structural hashing and the Ω.M
simplifications are re-applied automatically) and redirects the fanouts via
:meth:`~repro.core.mig.Mig.substitute`.

Complemented fanin edges are handled through the Ω.I axiom: an edge
``M'(a, b, c)`` is treated as ``M(a', b', c')`` when a rule needs to look
*through* it, which is exactly the inverter-propagation identity of the
paper.

The functions return ``True`` when a rewrite was performed.  Rewrites that
are attempted but rejected (no benefit) may leave dangling nodes behind;
callers run :meth:`~repro.core.mig.Mig.cleanup` once per optimization pass
to reclaim them, exactly like the "elimination" step of Algorithms 1 and 2.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from .mig import Mig
from .signal import is_complemented, negate, negate_if, node_of

__all__ = [
    "effective_fanins",
    "cone_nodes",
    "cone_size",
    "rebuild_cone",
    "try_distributivity_rl",
    "try_distributivity_lr",
    "try_associativity",
    "try_associativity_reshape",
    "try_complementary_associativity",
    "try_relevance",
    "try_substitution",
    "sweep_majority",
]

#: Default bound on the number of gates of a reconvergent cone inspected by
#: the Ψ.R / Ψ.S rules.  Larger values find more rewrites but cost more time.
DEFAULT_CONE_BOUND = 48


# --------------------------------------------------------------------- #
# Structural helpers
# --------------------------------------------------------------------- #
def effective_fanins(mig: Mig, edge: int) -> Optional[Tuple[int, int, int]]:
    """Return the fanins of the majority node behind ``edge``.

    If the edge is complemented the fanins are complemented as well
    (axiom Ω.I), so the returned triple always satisfies
    ``edge ≡ M(returned fanins)``.  Returns ``None`` when the edge does not
    point at a majority gate.

    This is the innermost helper of every rewrite rule, so it reads the
    kernel's fanin store directly instead of going through the accessor
    methods.
    """
    fanins = mig._fanins[edge >> 1]
    if fanins is None:
        return None
    if edge & 1:
        a, b, c = fanins
        return (a ^ 1, b ^ 1, c ^ 1)
    return fanins


def cone_nodes(mig: Mig, root: int, bound: int) -> Optional[List[int]]:
    """Gate nodes in the transitive fanin cone of signal ``root``.

    The result is in topological order (fanins first).  Returns ``None``
    when the cone contains more than ``bound`` gates.
    """
    fanins_store = mig._fanins
    root_node = root >> 1
    if fanins_store[root_node] is None:
        return []
    order: List[int] = []
    visited = set()
    # Post-order DFS; ``~node`` marks the emit-after-children visit.
    stack = [root_node]
    while stack:
        node = stack.pop()
        if node < 0:
            order.append(~node)
            if len(order) > bound:
                return None
            continue
        if node in visited:
            continue
        visited.add(node)
        stack.append(~node)
        for f in fanins_store[node]:
            fn = f >> 1
            if fanins_store[fn] is not None and fn not in visited:
                stack.append(fn)
    return order


def cone_size(mig: Mig, root: int, bound: int = 10_000) -> int:
    """Number of gates in the cone of ``root`` (up to ``bound``)."""
    nodes = cone_nodes(mig, root, bound)
    return len(nodes) if nodes is not None else bound


def rebuild_cone(
    mig: Mig,
    root: int,
    replacements: Dict[int, int],
    bound: int = DEFAULT_CONE_BOUND,
) -> Optional[int]:
    """Rebuild the cone of ``root`` applying a node→signal replacement map.

    ``replacements`` maps a node index to the signal that its *regular*
    output should become.  Every gate of the cone is re-expressed through
    :meth:`Mig.maj`, so simplifications propagate.  Returns the new signal
    for ``root`` or ``None`` when the cone exceeds ``bound`` gates.
    """
    nodes = cone_nodes(mig, root, bound)
    if nodes is None:
        return None
    mapping: Dict[int, int] = dict(replacements)

    def mapped(signal: int) -> int:
        node = node_of(signal)
        if node in mapping:
            return negate_if(mapping[node], is_complemented(signal))
        return signal

    for node in nodes:
        if node in mapping:
            continue
        a, b, c = mig.fanins(node)
        mapping[node] = mig.maj(mapped(a), mapped(b), mapped(c))
    return mapped(root)


def _level_of(levels: Sequence[int], signal: int) -> int:
    # NOTE: the hot rules (try_associativity, try_distributivity_lr) inline
    # this expression to avoid the call overhead in their inner loops; keep
    # the inlined copies in sync with any change to this convention.
    node = node_of(signal)
    if node < len(levels):
        return levels[node]
    # Node created after the level snapshot was taken: treat it as deep so
    # depth-driven decisions stay conservative (function is never affected).
    return len(levels)


# --------------------------------------------------------------------- #
# Ω.M sweep
# --------------------------------------------------------------------- #
def sweep_majority(mig: Mig) -> int:
    """Apply Ω.M left-to-right over the whole network.

    Node creation already performs these simplifications, so only nodes
    whose stored triple was rewritten in place by a substitution can have
    become reducible.  The kernel tracks exactly those in its ``_touched``
    set, which this sweep drains in ascending node order — the same visit
    order (and therefore the same result) as a full scan, at a fraction of
    the cost.  A node retargeted *behind* the sweep cursor stays in the set
    and is picked up by the next sweep, again matching the full-scan
    behaviour.  Returns the number of nodes removed.
    """
    removed = 0
    touched = mig._touched
    heap = sorted(touched)
    in_heap = set(heap)
    while heap:
        node = heapq.heappop(heap)
        in_heap.discard(node)
        touched.discard(node)
        if mig.is_dead(node) or not mig.is_maj(node):
            continue
        a, b, c = mig.fanins(node)
        replacement = None
        if a == b or a == c:
            replacement = a
        elif b == c:
            replacement = b
        elif a == negate(b):
            replacement = c
        elif a == negate(c):
            replacement = b
        elif b == negate(c):
            replacement = a
        if replacement is not None and mig.substitute(node, replacement):
            removed += 1
            # The substitution may have retargeted nodes ahead of the
            # cursor; merge them into this sweep like a full scan would.
            for t in touched:
                if t > node and t not in in_heap:
                    heapq.heappush(heap, t)
                    in_heap.add(t)
    return removed


# --------------------------------------------------------------------- #
# Ω.D — distributivity
# --------------------------------------------------------------------- #
def try_distributivity_rl(mig: Mig, node: int) -> bool:
    """Ω.D right-to-left: ``M(M(x,y,u), M(x,y,v), z) = M(x, y, M(u,v,z))``.

    Removes one node when the two children that share two fanins are not
    referenced elsewhere.  This is the main *elimination* move of
    Algorithm 1.
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    fanins = mig.fanins(node)
    for i in range(3):
        for j in range(i + 1, 3):
            first, second = fanins[i], fanins[j]
            child_a = effective_fanins(mig, first)
            child_b = effective_fanins(mig, second)
            if child_a is None or child_b is None:
                continue
            shared = _shared_two(child_a, child_b)
            if shared is None:
                continue
            (x, y), u, v = shared
            z = fanins[3 - i - j]
            # Only beneficial when both children can be reclaimed.
            if mig.fanout_size(node_of(first)) > 1 or mig.fanout_size(node_of(second)) > 1:
                continue
            replacement = mig.maj(x, y, mig.maj(u, v, z))
            if mig.substitute(node, replacement):
                return True
    return False


def try_distributivity_lr(
    mig: Mig, node: int, levels: Sequence[int], allow_area_increase: bool = True
) -> bool:
    """Ω.D left-to-right: ``M(x, y, M(u,v,z)) = M(M(x,y,u), M(x,y,v), z)``.

    Pushes the latest-arriving fanin ``z`` of a child one level closer to
    the output (Section IV-B), at the price of up to one duplicated node.
    Applied only when the rewrite strictly reduces the local depth.
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    fanins = mig.fanins(node)
    best = None
    num_levels = len(levels)
    for k in range(3):
        child = effective_fanins(mig, fanins[k])
        if child is None:
            continue
        x, y = (fanins[m] for m in range(3) if m != k)
        # Choose the deepest child fanin as the critical variable z
        # (levels of nodes created after the snapshot count as deep).
        child_sorted = sorted(
            child, key=lambda s: levels[s >> 1] if s >> 1 < num_levels else num_levels
        )
        u, v, z = child_sorted[0], child_sorted[1], child_sorted[2]
        lx = levels[x >> 1] if x >> 1 < num_levels else num_levels
        ly = levels[y >> 1] if y >> 1 < num_levels else num_levels
        lu = levels[u >> 1] if u >> 1 < num_levels else num_levels
        lv = levels[v >> 1] if v >> 1 < num_levels else num_levels
        lz = levels[z >> 1] if z >> 1 < num_levels else num_levels
        old_level = 2 + lz
        outer = lx if lx > ly else ly
        if lu > outer:
            inner_u = lu
        else:
            inner_u = outer
        if lv > outer:
            inner_v = lv
        else:
            inner_v = outer
        deepest = inner_u if inner_u > inner_v else inner_v
        new_level = 1 + max(1 + deepest, lz)
        if new_level >= old_level:
            continue
        if not allow_area_increase and mig.fanout_size(node_of(fanins[k])) > 1:
            continue
        if best is None or new_level < best[0]:
            best = (new_level, x, y, u, v, z)
    if best is None:
        return False
    _, x, y, u, v, z = best
    replacement = mig.maj(mig.maj(x, y, u), mig.maj(x, y, v), z)
    return mig.substitute(node, replacement)


# --------------------------------------------------------------------- #
# Ω.A — associativity
# --------------------------------------------------------------------- #
def try_associativity(
    mig: Mig, node: int, levels: Optional[Sequence[int]] = None
) -> bool:
    """Ω.A: ``M(x, u, M(y, u, z)) = M(z, u, M(y, u, x))``.

    Exchanges the outer operand ``x`` with the inner operand ``z`` when the
    inner one arrives later, reducing the local depth with no size penalty
    (when the child is not shared).  With ``levels=None`` the rule is applied
    whenever the pattern exists and the exchange moves a structurally deeper
    operand up (used by the reshape phase).
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    if levels is None:
        levels = mig.levels()
    fanins = mig.fanins(node)
    num_levels = len(levels)
    for k in range(3):
        child = effective_fanins(mig, fanins[k])
        if child is None:
            continue
        others = [fanins[m] for m in range(3) if m != k]
        for u in others:
            if u not in child:
                continue
            x = others[0] if others[1] == u else others[1]
            inner_rest = [s for s in child if s != u]
            if len(inner_rest) != 2:
                continue
            y, z = inner_rest
            # Pick the deeper of the two candidates for promotion (levels
            # of nodes created after the snapshot count as deep).
            ly = levels[y >> 1] if y >> 1 < num_levels else num_levels
            lz = levels[z >> 1] if z >> 1 < num_levels else num_levels
            if ly > lz:
                y, z = z, y
                lz = ly
            if lz <= (levels[x >> 1] if x >> 1 < num_levels else num_levels):
                continue
            replacement = mig.maj(z, u, mig.maj(y, u, x))
            if mig.substitute(node, replacement):
                return True
    return False


def try_associativity_reshape(mig: Mig, node: int) -> bool:
    """Ω.A used as a *reshape* move (Section IV-A walkthrough, Fig. 2(a)).

    ``M(x, u, M(y, u, z)) = M(z, u, M(y, u, x))`` applied in the direction
    that moves an outer operand ``x`` *into* the child when ``x`` shares
    support with the child's remaining operands.  This does not change size
    or depth by itself, but it brings reconvergent operands next to each
    other so that Ψ.C / Ψ.R / Ω.M can subsequently simplify them — exactly
    the "increase the number of common inputs" rationale of the paper.
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    fanins = mig.fanins(node)
    for k in range(3):
        child = effective_fanins(mig, fanins[k])
        if child is None:
            continue
        others = [fanins[m] for m in range(3) if m != k]
        for u in others:
            if u not in child:
                continue
            x = others[0] if others[1] == u else others[1]
            inner_rest = [s for s in child if s != u]
            if len(inner_rest) != 2:
                continue
            x_support = _support_nodes(mig, x)
            if not x_support:
                continue
            for swap_out in inner_rest:
                keep = inner_rest[0] if swap_out == inner_rest[1] else inner_rest[1]
                # Move x inside only if it reconverges with the operand kept
                # inside the child (and the operand moved out does not).
                keep_support = _support_nodes(mig, keep)
                if not (x_support & keep_support):
                    continue
                if node_of(swap_out) in x_support:
                    continue
                replacement = mig.maj(swap_out, u, mig.maj(keep, u, x))
                if mig.substitute(node, replacement):
                    return True
    return False


def _support_nodes(mig: Mig, signal: int, bound: int = 64) -> set:
    """Set of PI / constant-free leaf and internal nodes in the cone of ``signal``."""
    root = node_of(signal)
    if not mig.is_maj(root):
        return {root} if not mig.is_constant(root) else set()
    seen = {root}
    stack = [root]
    while stack and len(seen) < bound:
        current = stack.pop()
        if not mig.is_maj(current):
            continue
        for f in mig.fanins(current):
            fn = node_of(f)
            if fn not in seen and not mig.is_constant(fn):
                seen.add(fn)
                stack.append(fn)
    return seen


def try_complementary_associativity(
    mig: Mig, node: int, levels: Optional[Sequence[int]] = None
) -> bool:
    """Ψ.C: ``M(x, u, M(y, u', z)) = M(x, u, M(y, x, z))``.

    Replaces the complemented reconvergent operand ``u'`` inside the child
    with the other outer operand ``x``.  The rewrite never increases size;
    it reduces depth when ``x`` arrives earlier than ``u`` and, even when it
    does not, it increases operand sharing between adjacent levels, which is
    precisely the reshape rationale of Section IV-A.
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    if levels is None:
        levels = mig.levels()
    fanins = mig.fanins(node)
    for k in range(3):
        child = effective_fanins(mig, fanins[k])
        if child is None:
            continue
        others = [fanins[m] for m in range(3) if m != k]
        for idx, u in enumerate(others):
            nu = negate(u)
            if nu not in child:
                continue
            x = others[1 - idx]
            new_child = tuple(x if s == nu else s for s in child)
            replacement = mig.maj(x, u, mig.maj(*new_child))
            if mig.substitute(node, replacement):
                return True
    return False


# --------------------------------------------------------------------- #
# Ψ.R — relevance
# --------------------------------------------------------------------- #
def try_relevance(
    mig: Mig,
    node: int,
    bound: int = DEFAULT_CONE_BOUND,
    max_growth: int = 0,
) -> bool:
    """Ψ.R: ``M(x, y, z) = M(x, y, z_{x/y'})``.

    For each choice of the reconvergent operand ``x``, the cone of ``z`` is
    rebuilt with ``x`` replaced by ``y'``.  The rewrite is committed only
    when the network does not grow by more than ``max_growth`` nodes, which
    keeps relevance useful both for elimination (strictly smaller) and for
    reshaping (``max_growth > 0``).
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    fanins = mig.fanins(node)
    for z_pos in range(3):
        z = fanins[z_pos]
        if not mig.is_maj(node_of(z)):
            continue
        others = [fanins[m] for m in range(3) if m != z_pos]
        for x, y in (others, list(reversed(others))):
            x_node = node_of(x)
            cone = cone_nodes(mig, z, bound)
            if cone is None:
                continue
            reconvergent = any(
                node_of(f) == x_node for n in cone for f in mig.fanins(n)
            )
            if not reconvergent:
                continue
            size_before = mig.num_gates
            replacement_target = negate_if(negate(y), is_complemented(x))
            new_z = rebuild_cone(mig, z, {x_node: replacement_target}, bound)
            if new_z is None:
                continue
            created = mig.num_gates - size_before
            if created > len(cone) + max_growth:
                continue  # too much duplication; dangling nodes are swept later
            replacement = mig.maj(x, y, new_z)
            if mig.substitute(node, replacement):
                return True
    return False


# --------------------------------------------------------------------- #
# Ψ.S — substitution
# --------------------------------------------------------------------- #
def try_substitution(
    mig: Mig,
    node: int,
    bound: int = 24,
) -> bool:
    """Ψ.S — replace a reconvergent pair of operands inside the node's cone.

    ``M(x,y,z) = M(v, M(v', M_{v/u}(x,y,z), u), M(v', M_{v/u'}(x,y,z), u'))``

    The rule temporarily inflates the MIG; it is accepted only when, after
    the builder's implicit Ω.M/strashing simplification, the rewritten cone
    is not larger than the original one.  This mirrors the paper's use of
    Ψ.S as a "radical" reshape move (Fig. 2(b)).
    """
    if mig.is_dead(node) or not mig.is_maj(node):
        return False
    root = node * 2
    cone = cone_nodes(mig, root, bound)
    if cone is None or len(cone) < 2:
        return False
    # Candidate (v, u): the two most frequently referenced leaves of the cone.
    leaf_counts: Dict[int, int] = {}
    for n in cone:
        for f in mig.fanins(n):
            fn = node_of(f)
            if not mig.is_maj(fn) and not mig.is_constant(fn):
                leaf_counts[fn] = leaf_counts.get(fn, 0) + 1
    candidates = sorted(leaf_counts, key=leaf_counts.get, reverse=True)
    if len(candidates) < 2:
        return False
    v_node, u_node = candidates[0], candidates[1]
    v = v_node * 2
    u = u_node * 2

    size_before = mig.num_gates
    k_v_u = rebuild_cone(mig, root, {v_node: u}, bound)
    k_v_nu = rebuild_cone(mig, root, {v_node: negate(u)}, bound)
    if k_v_u is None or k_v_nu is None:
        return False
    replacement = mig.maj(
        v,
        mig.maj(negate(v), k_v_u, u),
        mig.maj(negate(v), k_v_nu, negate(u)),
    )
    old_cone_gates = len(cone)
    new_cone_gates = cone_size(mig, replacement, bound * 4)
    if new_cone_gates > old_cone_gates:
        return False  # dangling nodes reclaimed by the caller's cleanup()
    if not mig.substitute(node, replacement):
        return False
    mig.cleanup()
    return True


# --------------------------------------------------------------------- #
# Internal utilities
# --------------------------------------------------------------------- #
def _shared_two(
    first: Tuple[int, int, int], second: Tuple[int, int, int]
) -> Optional[Tuple[Tuple[int, int], int, int]]:
    """Find two signals shared by two fanin triples.

    Returns ``((x, y), u, v)`` where ``x, y`` are shared and ``u`` / ``v``
    are the remaining signals of ``first`` / ``second``, or ``None``.
    """
    first_list = list(first)
    second_list = list(second)
    shared = []
    pool = list(second_list)
    for s in first_list:
        if s in pool:
            shared.append(s)
            pool.remove(s)
    if len(shared) < 2:
        return None
    x, y = shared[0], shared[1]
    rest_first = list(first_list)
    rest_first.remove(x)
    rest_first.remove(y)
    rest_second = list(second_list)
    rest_second.remove(x)
    rest_second.remove(y)
    return (x, y), rest_first[0], rest_second[0]
