"""Boolean cut rewriting for MIGs — the optimization scenario beyond Ω/Ψ.

The paper optimizes MIGs with purely *algebraic* transformations (the Ω
axioms and the derived Ψ rules of :mod:`repro.core.rules`), which move
within the algebra of one cone at a time.  Cut rewriting is the standard
*Boolean* complement: enumerate the k-feasible cuts of every node, compute
the cut's truth table, and replace the cone by the precomputed optimal MIG
structure of its NPN class whenever that shrinks the network — catching
simplifications the axioms cannot see (e.g. a cone whose function happens
to be a single majority, an XOR, or a constant in disguise).

The heavy lifting is the network-generic engine in
:mod:`repro.network.rewrite`; this module fixes the MIG conventions:

* replacements are *depth-safe* by default (``max_level_growth=0``): the
  estimated level of the replacement must not exceed the root's current
  level, so a sweep can never increase the network depth — the invariant
  the MIGhty flow's acceptance policy relies on;
* zero-gain replacements are off by default (the MIG optimizers work in
  place, so canonicalization-for-strashing pays off less than in the
  rebuild-based AIG flow).

Use through the flow engine as the ``mig_rewrite`` pass
(:class:`repro.flows.engine.MigRewrite`) to interleave Boolean rewriting
with the algebraic passes, or call :func:`rewrite_mig` directly.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..network.rewrite import cut_rewrite
from .mig import Mig

__all__ = ["rewrite_mig"]


def rewrite_mig(
    mig: Mig,
    k: int = 4,
    cut_limit: int = 6,
    allow_zero_gain: bool = False,
    max_level_growth: Optional[int] = 0,
    max_size_growth: int = 0,
    incremental: bool = True,
) -> Dict[str, int]:
    """Run one Boolean cut-rewriting sweep over ``mig`` in place.

    Returns the engine's stats dictionary (``rewrites`` applied,
    ``zero_gain`` among them, total size ``gain``, plus the incremental
    cut engine's ``cut_nodes_recomputed`` / ``cut_nodes_reused``
    counters).  With the default ``max_level_growth=0`` the sweep never
    increases ``mig.depth()``; pass ``None`` to lift the bound
    (size-first mode) or a negative value for depth mode, where the
    shallowest admissible top-k entry wins and ``max_size_growth`` extra
    nodes may be spent per depth-improving move.  Sweeps share the MIG's
    :class:`~repro.network.cuts.CutManager`, so repeated rounds
    re-enumerate only touched cones; ``incremental=False`` forces
    from-scratch enumeration.
    """
    return cut_rewrite(
        mig,
        "mig",
        k=k,
        cut_limit=cut_limit,
        allow_zero_gain=allow_zero_gain,
        max_level_growth=max_level_growth,
        max_size_growth=max_size_growth,
        incremental=incremental,
    )
