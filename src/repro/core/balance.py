"""Associative tree balancing for MIGs.

Repeated application of the associativity axiom Ω.A re-parenthesises any
AND- or OR-tree (majority nodes sharing a constant operand) without
changing its function.  Doing this node by node on the critical path — as
:func:`repro.core.depth_opt.push_up` does — converges slowly on wide
two-level logic, so this module provides the closed form: a rebuild pass
that collects every maximal AND/OR tree and re-builds it as a
depth-balanced tree (earliest-arriving operands merged first).

The pass is part of the MIGhty flow (Section V-A interlaces it with the
majority-specific depth moves); it never changes the represented function
and, thanks to structural hashing during the rebuild, it does not increase
the node count.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

from .mig import Mig
from .signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    negate_if,
    node_of,
)

__all__ = ["balance_mig", "collect_tree_leaves"]


def _tree_constant(mig: Mig, node: int):
    """Return the constant operand (0 → AND tree, 1 → OR tree) or ``None``."""
    fanins = mig.fanins(node)
    if CONST_FALSE in fanins:
        return CONST_FALSE
    if CONST_TRUE in fanins:
        return CONST_TRUE
    return None


def collect_tree_leaves(mig: Mig, root: int, constant: int, limit: int = 256) -> List[int]:
    """Leaves of the maximal AND/OR tree rooted at node ``root``.

    Expansion follows regular (non-complemented) edges into majority nodes
    that carry the same constant operand.  Duplicate leaves are dropped and
    a complementary pair collapses the tree to the dominating constant.
    """
    leaves: List[int] = []
    seen = set()
    stack = [f for f in mig.fanins(root) if f != constant]
    while stack:
        current = stack.pop()
        node = node_of(current)
        if (
            not is_complemented(current)
            and mig.is_maj(node)
            and _tree_constant(mig, node) == constant
            and len(leaves) + len(stack) < limit
        ):
            stack.extend(f for f in mig.fanins(node) if f != constant)
            continue
        if (current ^ 1) in seen:
            # x together with x': an AND tree collapses to 0, an OR tree to 1,
            # which is exactly the tree's constant operand.
            return [constant]
        if current not in seen:
            seen.add(current)
            leaves.append(current)
    return leaves


def balance_mig(mig: Mig) -> Mig:
    """Return a balanced copy of ``mig`` (same function, same or fewer nodes)."""
    result = Mig()
    result.name = mig.name
    mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
    for node, name in zip(mig.pi_nodes(), mig.pi_names()):
        mapping[node] = result.add_pi(name)

    levels: Dict[int, int] = {CONST_NODE: 0}
    for node in mig.pi_nodes():
        levels[node_of(mapping[node])] = 0

    def new_level(signal: int) -> int:
        return levels.get(node_of(signal), 0)

    def record_level(signal: int, level: int) -> None:
        node = node_of(signal)
        levels[node] = max(levels.get(node, 0), level)

    memo: Dict[int, int] = {}

    def build(signal: int) -> int:
        node = node_of(signal)
        if node in memo:
            return negate_if(memo[node], is_complemented(signal))
        if not mig.is_maj(node):
            mapped = mapping[node]
            memo[node] = mapped
            return negate_if(mapped, is_complemented(signal))

        constant = _tree_constant(mig, node)
        if constant is None:
            a, b, c = (build(f) for f in mig.fanins(node))
            mapped = result.maj(a, b, c)
            record_level(
                mapped, 1 + max(new_level(a), new_level(b), new_level(c))
            )
            memo[node] = mapped
            return negate_if(mapped, is_complemented(signal))

        leaves = collect_tree_leaves(mig, node, constant)
        built = [build(leaf) for leaf in leaves]
        # Huffman-style balanced combination by arrival level.
        heap = [(new_level(s), index, s) for index, s in enumerate(built)]
        heapq.heapify(heap)
        counter = len(built)
        while len(heap) > 1:
            la, _, sa = heapq.heappop(heap)
            lb, _, sb = heapq.heappop(heap)
            merged = result.maj(sa, sb, constant)
            record_level(merged, max(la, lb) + 1)
            heapq.heappush(heap, (new_level(merged), counter, merged))
            counter += 1
        root = heap[0][2]
        memo[node] = root
        return negate_if(root, is_complemented(signal))

    for po, name in zip(mig.po_signals(), mig.po_names()):
        result.add_po(build(po), name)
    return result
