"""The paper's primary contribution: MIGs, their algebra and optimizers."""

from .mig import Mig
from .signal import (
    CONST_FALSE,
    CONST_TRUE,
    is_complemented,
    make_signal,
    negate,
    node_of,
)
from .rewrite import rewrite_mig
from .size_opt import SizeOptStats, optimize_size
from .depth_opt import DepthOptStats, optimize_depth
from .activity_opt import ActivityOptStats, optimize_activity
from .reshape import ReshapeParams, reshape
from .generation import (
    mig_from_truth_tables,
    mutate_network,
    random_aoig_mig,
    random_mig,
    random_network,
)

__all__ = [
    "Mig",
    "CONST_FALSE",
    "CONST_TRUE",
    "make_signal",
    "node_of",
    "negate",
    "is_complemented",
    "rewrite_mig",
    "optimize_size",
    "optimize_depth",
    "optimize_activity",
    "SizeOptStats",
    "DepthOptStats",
    "ActivityOptStats",
    "ReshapeParams",
    "reshape",
    "random_mig",
    "random_aoig_mig",
    "random_network",
    "mutate_network",
    "mig_from_truth_tables",
]
