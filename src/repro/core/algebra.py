"""Symbolic MIG Boolean algebra ``(B, M, ', 0, 1)``.

This module implements Section III-B of the paper at the *expression*
level: immutable majority/inverter expression trees, evaluation, and the
primitive axioms Ω (commutativity, majority, associativity, distributivity,
inverter propagation) together with the derived rules Ψ (relevance,
complementary associativity, substitution) as explicit, checkable
transformations.

The graph-level optimizers in :mod:`repro.core.rules` apply the same
identities directly on :class:`~repro.core.mig.Mig` networks; this symbolic
layer exists so that

* every axiom can be unit- and property-tested for soundness in isolation,
* the worked examples of the paper (Fig. 1 and Fig. 2) can be reproduced
  literally, and
* users can experiment with the algebra interactively.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

__all__ = [
    "Expr",
    "Var",
    "Const",
    "Maj",
    "Not",
    "maj",
    "var",
    "const",
    "inv",
    "TRUE",
    "FALSE",
    "evaluate",
    "variables",
    "truth_table",
    "equivalent",
    "expr_size",
    "expr_depth",
    "omega_commutativity",
    "omega_majority",
    "omega_associativity",
    "omega_distributivity_rl",
    "omega_distributivity_lr",
    "omega_inverter_propagation",
    "psi_relevance",
    "psi_complementary_associativity",
    "psi_substitution",
    "replace_variable",
    "to_string",
    "from_aoig_and",
    "from_aoig_or",
]


class Expr:
    """Base class of all majority-algebra expressions (immutable)."""

    __slots__ = ()

    def __invert__(self) -> "Expr":
        return inv(self)

    def __repr__(self) -> str:  # pragma: no cover - convenience
        return to_string(self)


@dataclass(frozen=True)
class Var(Expr):
    """A named Boolean variable."""

    name: str


@dataclass(frozen=True)
class Const(Expr):
    """A Boolean constant (0 or 1)."""

    value: bool


@dataclass(frozen=True)
class Not(Expr):
    """Complementation of a sub-expression."""

    child: Expr


@dataclass(frozen=True)
class Maj(Expr):
    """Three-input majority of sub-expressions."""

    a: Expr
    b: Expr
    c: Expr

    @property
    def children(self) -> Tuple[Expr, Expr, Expr]:
        return (self.a, self.b, self.c)


FALSE = Const(False)
TRUE = Const(True)


def var(name: str) -> Var:
    """Create a variable."""
    return Var(name)


def const(value: bool) -> Const:
    """Create a constant."""
    return TRUE if value else FALSE


def maj(a: Expr, b: Expr, c: Expr) -> Maj:
    """Create the majority expression ``M(a, b, c)`` (no simplification)."""
    return Maj(a, b, c)


def inv(e: Expr) -> Expr:
    """Complement an expression, collapsing double negations and constants."""
    if isinstance(e, Not):
        return e.child
    if isinstance(e, Const):
        return const(not e.value)
    return Not(e)


def from_aoig_and(a: Expr, b: Expr) -> Maj:
    """AND expressed in the algebra: ``M(a, b, 0)`` (Theorem 3.1)."""
    return maj(a, b, FALSE)


def from_aoig_or(a: Expr, b: Expr) -> Maj:
    """OR expressed in the algebra: ``M(a, b, 1)`` (Theorem 3.1)."""
    return maj(a, b, TRUE)


# --------------------------------------------------------------------- #
# Evaluation and equivalence
# --------------------------------------------------------------------- #
def evaluate(e: Expr, assignment: Dict[str, bool]) -> bool:
    """Evaluate ``e`` under a variable assignment."""
    if isinstance(e, Const):
        return e.value
    if isinstance(e, Var):
        try:
            return assignment[e.name]
        except KeyError as exc:
            raise KeyError(f"no value provided for variable {e.name!r}") from exc
    if isinstance(e, Not):
        return not evaluate(e.child, assignment)
    if isinstance(e, Maj):
        a = evaluate(e.a, assignment)
        b = evaluate(e.b, assignment)
        c = evaluate(e.c, assignment)
        return (a and b) or (a and c) or (b and c)
    raise TypeError(f"unknown expression type: {type(e)!r}")


def variables(e: Expr) -> FrozenSet[str]:
    """Return the set of variable names appearing in ``e``."""
    if isinstance(e, Var):
        return frozenset({e.name})
    if isinstance(e, Const):
        return frozenset()
    if isinstance(e, Not):
        return variables(e.child)
    if isinstance(e, Maj):
        return variables(e.a) | variables(e.b) | variables(e.c)
    raise TypeError(f"unknown expression type: {type(e)!r}")


def truth_table(e: Expr, order: Optional[Iterable[str]] = None) -> int:
    """Return the truth table of ``e`` as an integer bit-string.

    Bit ``i`` corresponds to the assignment where variable ``order[k]``
    takes the value of bit ``k`` of ``i``.
    """
    names = list(order) if order is not None else sorted(variables(e))
    table = 0
    for i in range(1 << len(names)):
        assignment = {name: bool((i >> k) & 1) for k, name in enumerate(names)}
        if evaluate(e, assignment):
            table |= 1 << i
    return table


def equivalent(e1: Expr, e2: Expr) -> bool:
    """Check Boolean equivalence of two expressions (exhaustively)."""
    names = sorted(variables(e1) | variables(e2))
    if len(names) > 16:
        raise ValueError("exhaustive equivalence limited to 16 variables")
    return truth_table(e1, names) == truth_table(e2, names)


def expr_size(e: Expr) -> int:
    """Number of majority operators in ``e`` (the size cost model)."""
    if isinstance(e, (Var, Const)):
        return 0
    if isinstance(e, Not):
        return expr_size(e.child)
    if isinstance(e, Maj):
        return 1 + expr_size(e.a) + expr_size(e.b) + expr_size(e.c)
    raise TypeError(f"unknown expression type: {type(e)!r}")


def expr_depth(e: Expr) -> int:
    """Number of majority levels on the longest path (the depth cost model)."""
    if isinstance(e, (Var, Const)):
        return 0
    if isinstance(e, Not):
        return expr_depth(e.child)
    if isinstance(e, Maj):
        return 1 + max(expr_depth(e.a), expr_depth(e.b), expr_depth(e.c))
    raise TypeError(f"unknown expression type: {type(e)!r}")


def to_string(e: Expr) -> str:
    """Render an expression in the paper's ``M(...)`` notation."""
    if isinstance(e, Const):
        return "1" if e.value else "0"
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Not):
        return to_string(e.child) + "'"
    if isinstance(e, Maj):
        return f"M({to_string(e.a)}, {to_string(e.b)}, {to_string(e.c)})"
    raise TypeError(f"unknown expression type: {type(e)!r}")


# --------------------------------------------------------------------- #
# Primitive axioms Ω
# --------------------------------------------------------------------- #
def omega_commutativity(e: Maj, permutation: Tuple[int, int, int] = (1, 0, 2)) -> Maj:
    """Ω.C — reorder the operands of a majority node."""
    children = e.children
    if sorted(permutation) != [0, 1, 2]:
        raise ValueError(f"invalid permutation {permutation}")
    return maj(children[permutation[0]], children[permutation[1]], children[permutation[2]])


def omega_majority(e: Maj) -> Optional[Expr]:
    """Ω.M — ``M(x, x, z) = x`` and ``M(x, x', z) = z`` (left-to-right).

    Returns the simplified expression, or ``None`` when the axiom does not
    apply syntactically.
    """
    a, b, c = e.children
    pairs = [((a, b), c), ((a, c), b), ((b, c), a)]
    for (p, q), other in pairs:
        if p == q:
            return p
        if p == inv(q):
            return other
    return None


def omega_associativity(e: Maj) -> Optional[Maj]:
    """Ω.A — ``M(x, u, M(y, u, z)) = M(z, u, M(y, u, x))``.

    The inner node must share one operand ``u`` with the outer node; ``x``
    and ``z`` are exchanged.  Returns ``None`` if the pattern is absent.
    """
    outer = list(e.children)
    for inner_pos, inner in enumerate(outer):
        if not isinstance(inner, Maj):
            continue
        rest = [outer[i] for i in range(3) if i != inner_pos]
        for u in rest:
            if u in inner.children:
                x = rest[0] if rest[1] == u else rest[1]
                inner_rest = [child for child in inner.children if child != u]
                if len(inner_rest) != 2:
                    # ``u`` appears twice in the inner node; Ω.M applies instead.
                    continue
                y, z = inner_rest
                return maj(z, u, maj(y, u, x))
    return None


def omega_distributivity_rl(e: Maj) -> Optional[Maj]:
    """Ω.D evaluated right-to-left.

    ``M(M(x, y, u), M(x, y, v), z) = M(x, y, M(u, v, z))`` — the direction
    that *removes* one majority operator (used for size optimization).
    """
    children = list(e.children)
    for i, j in itertools.combinations(range(3), 2):
        first, second = children[i], children[j]
        if not (isinstance(first, Maj) and isinstance(second, Maj)):
            continue
        z = children[3 - i - j]
        common = _shared_pair(first, second)
        if common is None:
            continue
        (x, y), u, v = common
        return maj(x, y, maj(u, v, z))
    return None


def omega_distributivity_lr(e: Maj) -> Optional[Maj]:
    """Ω.D evaluated left-to-right.

    ``M(x, y, M(u, v, z)) = M(M(x, y, u), M(x, y, v), z)`` — the direction
    that *duplicates* logic but can push a late-arriving operand ``z`` one
    level closer to the output (used for depth optimization).
    """
    children = list(e.children)
    for inner_pos, inner in enumerate(children):
        if not isinstance(inner, Maj):
            continue
        x, y = [children[i] for i in range(3) if i != inner_pos]
        u, v, z = inner.children
        return maj(maj(x, y, u), maj(x, y, v), z)
    return None


def omega_inverter_propagation(e: Expr) -> Expr:
    """Ω.I — ``M'(x, y, z) = M(x', y', z')`` (push an inverter through)."""
    if isinstance(e, Not) and isinstance(e.child, Maj):
        inner = e.child
        return maj(inv(inner.a), inv(inner.b), inv(inner.c))
    if isinstance(e, Maj):
        return inv(maj(inv(e.a), inv(e.b), inv(e.c)))
    raise ValueError("Ω.I applies to a complemented majority or a majority")


# --------------------------------------------------------------------- #
# Derived rules Ψ
# --------------------------------------------------------------------- #
def replace_variable(e: Expr, name: str, replacement: Expr) -> Expr:
    """Return ``e`` with every occurrence of variable ``name`` replaced."""
    if isinstance(e, Var):
        return replacement if e.name == name else e
    if isinstance(e, Const):
        return e
    if isinstance(e, Not):
        return inv(replace_variable(e.child, name, replacement))
    if isinstance(e, Maj):
        return maj(
            replace_variable(e.a, name, replacement),
            replace_variable(e.b, name, replacement),
            replace_variable(e.c, name, replacement),
        )
    raise TypeError(f"unknown expression type: {type(e)!r}")


def psi_relevance(e: Maj, x_pos: int = 0, y_pos: int = 1) -> Optional[Maj]:
    """Ψ.R — ``M(x, y, z) = M(x, y, z_{x/y'})``.

    Inside ``z`` the operand ``x`` only matters when ``x = y'`` (axiom Ω.M),
    so ``x`` may be replaced by ``y'`` there.  The operand at ``x_pos`` must
    be a plain or complemented variable so that the substitution is well
    defined: for ``x = v`` the variable ``v`` becomes ``y'``; for ``x = v'``
    it becomes ``y`` (this is the form used in the Fig. 2(a) walkthrough).
    """
    children = list(e.children)
    z_pos = 3 - x_pos - y_pos
    x, y, z = children[x_pos], children[y_pos], children[z_pos]
    if isinstance(x, Var):
        name, replacement = x.name, inv(y)
    elif isinstance(x, Not) and isinstance(x.child, Var):
        name, replacement = x.child.name, y
    else:
        return None
    new_z = replace_variable(z, name, replacement)
    result = [None, None, None]
    result[x_pos], result[y_pos], result[z_pos] = x, y, new_z
    return maj(*result)


def psi_complementary_associativity(e: Maj) -> Optional[Maj]:
    """Ψ.C — ``M(x, u, M(y, u', z)) = M(x, u, M(y, x, z))``."""
    children = list(e.children)
    for inner_pos, inner in enumerate(children):
        if not isinstance(inner, Maj):
            continue
        rest = [children[i] for i in range(3) if i != inner_pos]
        for u_index, u in enumerate(rest):
            u_compl = inv(u)
            if u_compl in inner.children:
                x = rest[1 - u_index]
                inner_children = list(inner.children)
                idx = inner_children.index(u_compl)
                inner_children[idx] = x
                result = [None, None, None]
                positions = [i for i in range(3) if i != inner_pos]
                result[positions[1 - u_index]] = x
                result[positions[u_index]] = u
                result[inner_pos] = maj(*inner_children)
                return maj(*result)
    return None


def psi_substitution(e: Maj, v_name: str, u: Expr) -> Maj:
    """Ψ.S — variable substitution.

    ``M(x,y,z) = M(v, M(v', M_{v/u}(x,y,z), u), M(v', M_{v/u'}(x,y,z), u'))``

    ``v_name`` must appear in ``e``; ``u`` is an arbitrary expression that
    does not depend on ``v``.  The rule temporarily inflates the expression
    (as discussed in Section IV-A) but exposes new simplification
    opportunities.
    """
    if v_name not in variables(e):
        raise ValueError(f"variable {v_name!r} does not occur in the expression")
    if v_name in variables(u):
        raise ValueError("the replacement expression must not depend on v")
    v = var(v_name)
    k_v_u = replace_variable(e, v_name, u)
    k_v_not_u = replace_variable(e, v_name, inv(u))
    return maj(
        v,
        maj(inv(v), k_v_u, u),
        maj(inv(v), k_v_not_u, inv(u)),
    )


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #
def _shared_pair(
    first: Maj, second: Maj
) -> Optional[Tuple[Tuple[Expr, Expr], Expr, Expr]]:
    """Find two operands shared by two majority expressions.

    Returns ``((x, y), u, v)`` where ``x, y`` are shared and ``u``/``v`` are
    the remaining operands of ``first``/``second`` respectively, or ``None``
    when fewer than two operands are shared.
    """
    first_children = list(first.children)
    second_children = list(second.children)
    shared = []
    second_pool = list(second_children)
    for child in first_children:
        if child in second_pool:
            shared.append(child)
            second_pool.remove(child)
    if len(shared) < 2:
        return None
    x, y = shared[0], shared[1]
    first_rest = list(first_children)
    first_rest.remove(x)
    first_rest.remove(y)
    second_rest = list(second_children)
    second_rest.remove(x)
    second_rest.remove(y)
    return (x, y), first_rest[0], second_rest[0]
