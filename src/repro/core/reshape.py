"""The *reshape* process shared by Algorithms 1 and 2.

When no direct elimination (size) or push-up (depth) move applies, the
paper locally restructures the MIG "to increase the number of common
inputs/variables to MIG nodes": associativity moves operands between
adjacent levels, relevance exchanges reconvergent operands and, when a more
radical transformation is needed, substitution replaces pairs of
independent operands at the price of a temporary inflation (Section IV-A).

This module implements that process as a single configurable pass so that
the size, depth and activity optimizers all reshape the same way (only the
acceptance criteria differ, which the caller controls through
:class:`ReshapeParams`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .mig import Mig
from .rules import (
    DEFAULT_CONE_BOUND,
    try_associativity,
    try_associativity_reshape,
    try_complementary_associativity,
    try_relevance,
    try_substitution,
)

__all__ = ["ReshapeParams", "reshape"]


@dataclass
class ReshapeParams:
    """Tuning knobs of the reshape process.

    Attributes
    ----------
    use_associativity, use_complementary, use_relevance, use_substitution:
        Enable/disable the individual rules; the ablation benchmark
        (``benchmarks/bench_ablation_reshape.py``) sweeps these.
    relevance_growth:
        Maximum number of extra nodes a Ψ.R rewrite may introduce.
    cone_bound:
        Bound on reconvergent-cone size inspected by Ψ.R / Ψ.S.
    max_rewrites:
        Upper bound on accepted rewrites per pass (keeps runtime linear-ish
        on large networks); ``None`` means unbounded.
    substitution_period:
        Ψ.S is attempted only on every ``substitution_period``-th visited
        node (it is the most expensive rule).
    """

    use_associativity: bool = True
    use_complementary: bool = True
    use_relevance: bool = True
    use_substitution: bool = True
    relevance_growth: int = 2
    cone_bound: int = DEFAULT_CONE_BOUND
    max_rewrites: Optional[int] = None
    substitution_period: int = 16


def reshape(mig: Mig, params: Optional[ReshapeParams] = None) -> int:
    """Run one reshape pass over the whole network.

    Returns the number of accepted rewrites.  Dangling nodes left behind by
    rejected attempts are reclaimed before returning.
    """
    params = params or ReshapeParams()
    levels = mig.levels()
    rewrites = 0
    visited = 0
    for node in list(mig.gates()):
        if mig.is_dead(node):
            continue
        if params.max_rewrites is not None and rewrites >= params.max_rewrites:
            break
        visited += 1
        applied = False
        if params.use_associativity and try_associativity(mig, node, levels):
            applied = True
        elif params.use_associativity and try_associativity_reshape(mig, node):
            applied = True
        elif params.use_complementary and try_complementary_associativity(
            mig, node, levels
        ):
            applied = True
        elif params.use_relevance and try_relevance(
            mig, node, bound=params.cone_bound, max_growth=params.relevance_growth
        ):
            applied = True
        elif (
            params.use_substitution
            and visited % params.substitution_period == 0
            and try_substitution(mig, node, bound=min(24, params.cone_bound))
        ):
            applied = True
        if applied:
            rewrites += 1
            # Levels drift as the structure changes; refresh periodically so
            # the associativity decisions stay meaningful without paying an
            # O(n) recomputation per rewrite.
            if rewrites % 64 == 0:
                levels = mig.levels()
    mig.cleanup()
    return rewrites
