r"""MIG depth optimization (Algorithm 2 of the paper).

The goal is to shorten the critical path by moving late-arriving (critical)
operands closer to the outputs:

* the majority axiom Ω.M\ :sub:`L→R` removes nodes outright (both depth and
  size win);
* associativity Ω.A and complementary associativity Ψ.C push a critical
  operand one level up with **no** size penalty;
* distributivity Ω.D\ :sub:`L→R` pushes a critical operand up at the price
  of one duplicated node;
* when no push-up applies, the *reshape* process (shared with Algorithm 1)
  restructures the logic to create new opportunities.

As in the paper the optimizer runs for a user-defined number of *effort*
cycles and never undoes an improvement: MIGs returned by this pass cannot
be improved by any further direct push-up move.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from .mig import Mig
from .reshape import ReshapeParams, reshape
from .rules import (
    sweep_majority,
    try_associativity,
    try_complementary_associativity,
    try_distributivity_lr,
)
from .size_opt import eliminate

__all__ = ["DepthOptStats", "push_up", "optimize_depth"]


@dataclass
class DepthOptStats:
    """Summary of one :func:`optimize_depth` run."""

    initial_size: int
    final_size: int
    initial_depth: int
    final_depth: int
    cycles: int
    push_up_rewrites: int
    reshape_rewrites: int
    runtime_s: float
    depth_per_cycle: List[int] = field(default_factory=list)

    @property
    def depth_reduction_percent(self) -> float:
        if self.initial_depth == 0:
            return 0.0
        return 100.0 * (self.initial_depth - self.final_depth) / self.initial_depth


def push_up(
    mig: Mig,
    max_rounds: int = 32,
    allow_area_increase: bool = True,
) -> int:
    """Move critical operands toward the outputs until no move helps.

    Each round recomputes the levels and the critical section once, then
    visits the critical nodes from the outputs toward the inputs applying
    the cheapest applicable rule (Ω.M implicitly, then Ω.A, Ψ.C and finally
    Ω.D L→R).  Returns the number of accepted rewrites.
    """
    rewrites = 0
    for _ in range(max_rounds):
        sweep_majority(mig)
        depth_before = mig.depth()
        if depth_before == 0:
            break
        levels = mig.levels()
        round_rewrites = 0
        for node in mig.critical_nodes():
            if mig.is_dead(node):
                continue
            if try_associativity(mig, node, levels):
                round_rewrites += 1
            elif try_complementary_associativity(mig, node, levels):
                round_rewrites += 1
            elif try_distributivity_lr(
                mig, node, levels, allow_area_increase=allow_area_increase
            ):
                round_rewrites += 1
        mig.cleanup()
        rewrites += round_rewrites
        if round_rewrites == 0:
            break
    return rewrites


def optimize_depth(
    mig: Mig,
    effort: int = 3,
    reshape_params: Optional[ReshapeParams] = None,
    size_recovery: bool = True,
) -> DepthOptStats:
    """Run Algorithm 2 (MIG-depth optimization) in place.

    Parameters
    ----------
    mig:
        The network to optimize (modified in place).
    effort:
        Number of push-up / reshape cycles.
    reshape_params:
        Reshape tuning used to escape local minima between push-up rounds.
    size_recovery:
        When true (the default, matching the MIGhty flow of Section V-A),
        an elimination pass is interlaced after each cycle so the duplication
        introduced by Ω.D L→R is partially reclaimed.
    """
    start = time.perf_counter()
    initial_size = mig.num_gates
    initial_depth = mig.depth()
    params = reshape_params or ReshapeParams(relevance_growth=1)

    push_rewrites = 0
    reshape_rewrites = 0
    depth_per_cycle: List[int] = []
    cycles_run = 0
    best = mig.copy()

    def better_than_best() -> bool:
        return (mig.depth(), mig.num_gates) < (best.depth(), best.num_gates)

    for cycle in range(max(1, effort)):
        cycles_run = cycle + 1
        depth_before_cycle = mig.depth()
        size_before_cycle = mig.num_gates

        push_rewrites += push_up(mig)
        cycle_reshapes = reshape(mig, params)
        reshape_rewrites += cycle_reshapes
        push_rewrites += push_up(mig)
        if size_recovery:
            eliminate(mig)

        if better_than_best():
            best = mig.copy()
        depth_per_cycle.append(mig.depth())
        no_depth_progress = mig.depth() >= depth_before_cycle
        no_size_progress = mig.num_gates >= size_before_cycle
        if no_depth_progress and no_size_progress and cycle_reshapes == 0:
            break

    if (best.depth(), best.num_gates) < (mig.depth(), mig.num_gates):
        # Keep the best (depth, size) point visited: depth optimization
        # never returns a deeper network than it was given.
        mig.assign_from(best)

    return DepthOptStats(
        initial_size=initial_size,
        final_size=mig.num_gates,
        initial_depth=initial_depth,
        final_depth=mig.depth(),
        cycles=cycles_run,
        push_up_rewrites=push_rewrites,
        reshape_rewrites=reshape_rewrites,
        runtime_s=time.perf_counter() - start,
        depth_per_cycle=depth_per_cycle,
    )
