"""Majority-Inverter Graph (MIG) logic network.

This module implements the data structure introduced in Section III of the
paper: a homogeneous directed acyclic graph whose every internal node is a
three-input majority function ``M(a, b, c)`` and whose edges carry an
optional complementation attribute.

Design notes
------------
* Nodes are identified by dense integer indices.  Node ``0`` is the
  constant-0 node; primary inputs follow; majority gates are appended as
  they are created.
* Edges ("signals") are encoded as ``(node << 1) | complement`` integers,
  see :mod:`repro.core.signal`.
* Structural hashing is performed at node-creation time together with the
  trivial majority simplifications ``M(x, x, y) = x`` and
  ``M(x, x', y) = y`` (axiom Ω.M) and constant folding, so no structurally
  duplicated or trivially reducible node is ever materialised by
  :meth:`Mig.maj`.
* Node polarity is canonicalised on creation using inverter propagation
  (axiom Ω.I): a node never stores two or three complemented fanins; the
  complement is pushed to the output edge instead.
* The network supports in-place node substitution with automatic
  propagation (cascading strashing hits and Ω.M simplifications), which is
  the mechanism used by every optimization rule in
  :mod:`repro.core.rules`, :mod:`repro.core.size_opt` and
  :mod:`repro.core.depth_opt`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    make_signal,
    negate,
    negate_if,
    node_of,
    signal_repr,
)

__all__ = ["Mig"]


class Mig:
    """A Majority-Inverter Graph.

    The public surface follows the vocabulary of the paper: primary
    inputs/outputs, majority nodes, complemented edges, size (number of
    majority nodes), depth (number of levels on the longest PI→PO path)
    and switching activity (see :mod:`repro.analysis.activity`).

    Example
    -------
    >>> mig = Mig()
    >>> x, y, z = (mig.add_pi(n) for n in "xyz")
    >>> f = mig.maj(x, y, z)
    >>> mig.add_po(f, "f")
    0
    >>> mig.num_gates
    1
    """

    def __init__(self) -> None:
        # Per-node storage.  ``_fanins[n]`` is a tuple of three signals for
        # majority nodes and ``None`` for the constant node and PIs.
        self._fanins: List[Optional[Tuple[int, int, int]]] = [None]
        self._dead: List[bool] = [False]
        self._ref: List[int] = [0]
        self._fanouts: List[set] = [set()]

        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []

        self._strash: Dict[Tuple[int, int, int], int] = {}
        self._num_gates = 0
        self.name: str = "mig"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (regular) signal."""
        node = self._allocate_node(None)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_signal(node)

    def add_po(self, signal: int, name: Optional[str] = None) -> int:
        """Register ``signal`` as a primary output; return its PO index."""
        self._validate_signal(signal)
        index = len(self._pos)
        self._pos.append(signal)
        self._po_names.append(name if name is not None else f"po{index}")
        self._ref[node_of(signal)] += 1
        return index

    def constant(self, value: bool) -> int:
        """Return the constant-0 or constant-1 signal."""
        return CONST_TRUE if value else CONST_FALSE

    def get_constant(self, value: bool) -> int:
        """Alias of :meth:`constant` (mockturtle-compatible name)."""
        return self.constant(value)

    def maj(self, a: int, b: int, c: int) -> int:
        """Create (or reuse) the majority node ``M(a, b, c)``.

        Trivial simplifications (axiom Ω.M and constant propagation through
        it) are applied eagerly, the fanins are sorted into canonical order
        and the node is looked up in the structural hash table before a new
        node is allocated.
        """
        for s in (a, b, c):
            self._validate_signal(s)

        simplified = _simplify_maj(a, b, c)
        if simplified is not None:
            return simplified

        fanins, out_compl = _normalize_maj(a, b, c)
        existing = self._strash.get(fanins)
        if existing is not None and not self._dead[existing]:
            return make_signal(existing, out_compl)

        node = self._allocate_node(fanins)
        self._strash[fanins] = node
        self._num_gates += 1
        for f in fanins:
            fn = node_of(f)
            self._ref[fn] += 1
            self._fanouts[fn].add(node)
        return make_signal(node, out_compl)

    # Derived operators ------------------------------------------------- #
    def not_(self, a: int) -> int:
        """Return the complement of ``a`` (a complemented edge, no node)."""
        return negate(a)

    def and_(self, a: int, b: int) -> int:
        """AND via the majority generalisation ``M(a, b, 0)``."""
        return self.maj(a, b, CONST_FALSE)

    def or_(self, a: int, b: int) -> int:
        """OR via the majority generalisation ``M(a, b, 1)``."""
        return self.maj(a, b, CONST_TRUE)

    def nand_(self, a: int, b: int) -> int:
        return negate(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        return negate(self.or_(a, b))

    def xor_(self, a: int, b: int) -> int:
        """XOR built from two levels of majority nodes."""
        return self.maj(
            negate(self.and_(a, b)),
            self.or_(a, b),
            CONST_FALSE,
        )

    def xnor_(self, a: int, b: int) -> int:
        return negate(self.xor_(a, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        """If-then-else ``sel ? t : e`` expressed with majority nodes."""
        return self.or_(self.and_(sel, t), self.and_(negate(sel), e))

    def xor3_(self, a: int, b: int, c: int) -> int:
        """Three-input XOR (parity), the function of Fig. 1(a)."""
        return self.xor_(self.xor_(a, b), c)

    def and3_(self, a: int, b: int, c: int) -> int:
        return self.and_(self.and_(a, b), c)

    def or3_(self, a: int, b: int, c: int) -> int:
        return self.or_(self.or_(a, b), c)

    def minority(self, a: int, b: int, c: int) -> int:
        """Minority = complement of majority (the MIN-3 standard cell)."""
        return negate(self.maj(a, b, c))

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    @property
    def num_gates(self) -> int:
        """Number of live majority nodes (the *size* metric of the paper)."""
        return self._num_gates

    @property
    def size(self) -> int:
        """Alias for :attr:`num_gates`."""
        return self._num_gates

    @property
    def num_nodes(self) -> int:
        """Total allocated node slots (including constant, PIs and dead nodes)."""
        return len(self._fanins)

    def pi_nodes(self) -> List[int]:
        return list(self._pis)

    def pi_signals(self) -> List[int]:
        return [make_signal(n) for n in self._pis]

    def po_signals(self) -> List[int]:
        return list(self._pos)

    def pi_names(self) -> List[str]:
        return list(self._pi_names)

    def po_names(self) -> List[str]:
        return list(self._po_names)

    def pi_name(self, index: int) -> str:
        return self._pi_names[index]

    def po_name(self, index: int) -> str:
        return self._po_names[index]

    def pi_index(self, node: int) -> int:
        """Return the PI index of ``node`` (raises if not a PI)."""
        return self._pis.index(node)

    def set_po(self, index: int, signal: int) -> None:
        """Redirect an already-registered primary output."""
        self._validate_signal(signal)
        old = self._pos[index]
        self._pos[index] = signal
        self._ref[node_of(signal)] += 1
        self._deref(node_of(old))

    def is_constant(self, node: int) -> bool:
        return node == CONST_NODE

    def is_pi(self, node: int) -> bool:
        return self._fanins[node] is None and node != CONST_NODE

    def is_maj(self, node: int) -> bool:
        return self._fanins[node] is not None

    def is_dead(self, node: int) -> bool:
        return self._dead[node]

    def fanins(self, node: int) -> Tuple[int, int, int]:
        """Return the three fanin signals of a majority node."""
        fanins = self._fanins[node]
        if fanins is None:
            raise ValueError(f"node {node} is not a majority node")
        return fanins

    def fanout_nodes(self, node: int) -> List[int]:
        """Return the live gate nodes that reference ``node`` as a fanin."""
        return [n for n in self._fanouts[node] if not self._dead[n]]

    def fanout_size(self, node: int) -> int:
        """Number of references (fanin edges plus primary outputs)."""
        return self._ref[node]

    def gates(self) -> Iterator[int]:
        """Iterate over live majority nodes (no particular order)."""
        for node in range(1, len(self._fanins)):
            if self._fanins[node] is not None and not self._dead[node]:
                yield node

    def nodes(self) -> Iterator[int]:
        """Iterate over all live nodes: constant, PIs, then gates."""
        for node in range(len(self._fanins)):
            if not self._dead[node]:
                yield node

    # ------------------------------------------------------------------ #
    # Topology, levels, depth
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """Live gate nodes in topological order (fanins before fanouts).

        Only nodes in the transitive fanin of a primary output are
        included, which matches the *size* accounting of the paper
        (dangling nodes are removed by :meth:`cleanup`).
        """
        order: List[int] = []
        visited = [False] * len(self._fanins)
        for node in self._pis:
            visited[node] = True
        visited[CONST_NODE] = True

        for po in self._pos:
            root = node_of(po)
            if visited[root]:
                continue
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if visited[node]:
                    continue
                visited[node] = True
                stack.append((node, True))
                for f in self._fanins[node]:
                    fn = node_of(f)
                    if not visited[fn] and self._fanins[fn] is not None:
                        stack.append((fn, False))
        return order

    def levels(self) -> List[int]:
        """Return per-node logic levels (PIs and constant at level 0)."""
        level = [0] * len(self._fanins)
        for node in self.topological_order():
            level[node] = 1 + max(level[node_of(f)] for f in self._fanins[node])
        return level

    def depth(self) -> int:
        """Depth of the network: the paper's *delay* proxy."""
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[node_of(po)] for po in self._pos)

    def critical_nodes(self) -> List[int]:
        """Gate nodes lying on at least one maximum-depth path."""
        level = self.levels()
        depth = self.depth()
        if depth == 0:
            return []
        required: Dict[int, int] = {}
        for po in self._pos:
            n = node_of(po)
            if level[n] == depth:
                required[n] = depth
        result: List[int] = []
        order = self.topological_order()
        for node in reversed(order):
            if node not in required:
                continue
            result.append(node)
            req = required[node]
            for f in self._fanins[node]:
                fn = node_of(f)
                if self._fanins[fn] is not None and level[fn] == req - 1:
                    prev = required.get(fn, -1)
                    required[fn] = max(prev, req - 1)
        return result

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate_patterns(self, pi_patterns: Sequence[int], num_bits: int) -> List[int]:
        """Bit-parallel simulation.

        ``pi_patterns[i]`` is an integer whose ``num_bits`` low bits are the
        stimulus of the ``i``-th primary input.  Returns one pattern per
        primary output.
        """
        if len(pi_patterns) != len(self._pis):
            raise ValueError(
                f"expected {len(self._pis)} PI patterns, got {len(pi_patterns)}"
            )
        mask = (1 << num_bits) - 1
        values = [0] * len(self._fanins)
        for node, pattern in zip(self._pis, pi_patterns):
            values[node] = pattern & mask

        for node in self.topological_order():
            a, b, c = self._fanins[node]
            va = self._edge_value(values, a, mask)
            vb = self._edge_value(values, b, mask)
            vc = self._edge_value(values, c, mask)
            values[node] = (va & vb) | (va & vc) | (vb & vc)

        outputs = []
        for po in self._pos:
            outputs.append(self._edge_value(values, po, mask))
        return outputs

    def simulate(self, assignment: Sequence[bool]) -> List[bool]:
        """Simulate a single input assignment; returns PO boolean values."""
        patterns = [1 if bit else 0 for bit in assignment]
        outputs = self.simulate_patterns(patterns, 1)
        return [bool(o & 1) for o in outputs]

    def truth_tables(self) -> List[int]:
        """Exhaustive truth tables of all POs (requires ≤ 20 inputs)."""
        n = len(self._pis)
        if n > 20:
            raise ValueError("exhaustive simulation limited to 20 inputs")
        num_bits = 1 << n
        patterns = []
        for i in range(n):
            block = (1 << (1 << i)) - 1
            pattern = 0
            period = 1 << (i + 1)
            for start in range(1 << i, num_bits, period):
                pattern |= block << start
            patterns.append(pattern)
        return self.simulate_patterns(patterns, num_bits)

    @staticmethod
    def _edge_value(values: List[int], signal: int, mask: int) -> int:
        v = values[node_of(signal)]
        return (~v) & mask if is_complemented(signal) else v

    # ------------------------------------------------------------------ #
    # In-place manipulation (the engine behind Ω / Ψ rule application)
    # ------------------------------------------------------------------ #
    def substitute(self, old_node: int, new_signal: int) -> bool:
        """Replace every reference to ``old_node`` with ``new_signal``.

        Cascading effects (structural-hash hits and Ω.M simplifications in
        the fanout nodes) are propagated automatically.  Returns ``False``
        (and does nothing) if the substitution would create a cycle, i.e.
        if ``old_node`` lies in the transitive fanin of ``new_signal``.
        """
        if old_node == CONST_NODE and new_signal in (CONST_FALSE, CONST_TRUE):
            return True
        if node_of(new_signal) == old_node:
            return True
        if self._in_tfi(old_node, node_of(new_signal)):
            return False

        # Replacement signals sitting in the queue are reference-protected so
        # that unrelated cascade steps cannot reclaim them before their turn.
        queue: deque = deque()

        def enqueue(old: int, new: int) -> None:
            self._ref[node_of(new)] += 1
            queue.append((old, new))

        enqueue(old_node, new_signal)
        while queue:
            old, new = queue.popleft()
            new_node = node_of(new)
            if not self._dead[old] and new_node != old:
                # Redirect primary outputs.
                for index, po in enumerate(self._pos):
                    if node_of(po) == old:
                        replacement = negate_if(new, is_complemented(po))
                        self._pos[index] = replacement
                        self._ref[node_of(replacement)] += 1
                        self._ref[old] -= 1
                # Redirect fanouts.
                for parent in list(self._fanouts[old]):
                    if self._dead[parent] or old not in {
                        node_of(f) for f in self._fanins[parent]
                    }:
                        self._fanouts[old].discard(parent)
                        continue
                    collapse = self._replace_in_node(parent, old, new)
                    if collapse is not None and node_of(collapse) != old:
                        enqueue(parent, collapse)
            # Release the protection reference of this queue entry.
            self._deref(new_node)
            # Remove the now-unreferenced node.
            if not self._dead[old] and self._ref[old] == 0 and self.is_maj(old):
                self._take_out(old)
        return True

    def _replace_in_node(self, parent: int, old: int, new: int) -> Optional[int]:
        """Rewrite the fanins of ``parent`` replacing node ``old`` by ``new``.

        Returns a signal when ``parent`` itself collapses (its rewritten
        fanin triple simplifies or hits the structural hash table), in which
        case the caller must substitute ``parent`` by the returned signal.
        Returns ``None`` when ``parent`` was updated in place.
        """
        old_fanins = self._fanins[parent]
        new_fanins = tuple(
            negate_if(new, is_complemented(f)) if node_of(f) == old else f
            for f in old_fanins
        )
        if new_fanins == old_fanins:
            return None

        simplified = _simplify_maj(*new_fanins)
        if simplified is not None:
            return simplified

        key = tuple(sorted(new_fanins))
        existing = self._strash.get(key)
        if existing is not None and existing != parent and not self._dead[existing]:
            return make_signal(existing)
        neg_key = tuple(sorted(negate(f) for f in new_fanins))
        existing_neg = self._strash.get(neg_key)
        if existing_neg is not None and existing_neg != parent and not self._dead[existing_neg]:
            return make_signal(existing_neg, True)

        # In-place update of the parent node.
        old_key = tuple(sorted(old_fanins))
        if self._strash.get(old_key) == parent:
            del self._strash[old_key]
        self._strash[key] = parent
        self._retarget_fanins(parent, old_fanins, key)
        return None

    def _retarget_fanins(
        self, parent: int, old_fanins: Tuple[int, int, int], new_fanins: Tuple[int, int, int]
    ) -> None:
        """Swap the fanin triple of ``parent`` keeping ref counts consistent.

        New references are added *before* old ones are released so that a
        node shared between the two triples (directly or through a dying
        fanin's cone) can never be reclaimed transiently.
        """
        new_nodes = [node_of(f) for f in new_fanins]
        for fn in new_nodes:
            self._ref[fn] += 1
            self._fanouts[fn].add(parent)
        self._fanins[parent] = new_fanins
        new_set = set(new_nodes)
        for f in old_fanins:
            fn = node_of(f)
            self._ref[fn] -= 1
            if fn not in new_set:
                self._fanouts[fn].discard(parent)
            if self._ref[fn] == 0 and self.is_maj(fn) and not self._dead[fn]:
                self._take_out(fn)

    def replace_fanins(self, node: int, fanins: Tuple[int, int, int]) -> Optional[int]:
        """Low-level helper used by rewrite rules to retarget a node's fanins.

        The fanins are simplified/strashed like in :meth:`maj`; if the new
        triple collapses onto an existing signal, that signal is returned
        and the node is substituted by it; otherwise ``None`` is returned.
        """
        for s in fanins:
            self._validate_signal(s)
        old_fanins = self._fanins[node]
        if old_fanins is None:
            raise ValueError(f"node {node} is not a majority node")
        if tuple(sorted(fanins)) == tuple(sorted(old_fanins)):
            return None
        for s in fanins:
            if self._in_tfi(node, node_of(s)):
                raise ValueError("replace_fanins would create a combinational cycle")

        simplified = _simplify_maj(*fanins)
        if simplified is not None:
            self.substitute(node, simplified)
            return simplified

        key = tuple(sorted(fanins))
        existing = self._strash.get(key)
        if existing is not None and existing != node and not self._dead[existing]:
            self.substitute(node, make_signal(existing))
            return make_signal(existing)

        old_key = tuple(sorted(old_fanins))
        if self._strash.get(old_key) == node:
            del self._strash[old_key]
        self._strash[key] = node
        self._retarget_fanins(node, old_fanins, key)
        return None

    def cleanup(self) -> int:
        """Remove dangling nodes (no fanout, not driving a PO). Returns count."""
        removed = 0
        changed = True
        while changed:
            changed = False
            for node in range(1, len(self._fanins)):
                if (
                    self._fanins[node] is not None
                    and not self._dead[node]
                    and self._ref[node] == 0
                ):
                    self._take_out(node)
                    removed += 1
                    changed = True
        return removed

    # ------------------------------------------------------------------ #
    # Copy / rebuild
    # ------------------------------------------------------------------ #
    def copy(self) -> "Mig":
        """Return a compact, strashed copy containing only live logic."""
        other = Mig()
        other.name = self.name
        mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
        for node, name in zip(self._pis, self._pi_names):
            mapping[node] = other.add_pi(name)
        for node in self.topological_order():
            a, b, c = self._fanins[node]
            mapping[node] = other.maj(
                negate_if(mapping[node_of(a)], is_complemented(a)),
                negate_if(mapping[node_of(b)], is_complemented(b)),
                negate_if(mapping[node_of(c)], is_complemented(c)),
            )
        for po, name in zip(self._pos, self._po_names):
            other.add_po(negate_if(mapping[node_of(po)], is_complemented(po)), name)
        return other

    def check_integrity(self) -> None:
        """Validate internal invariants; raises ``AssertionError`` on corruption.

        Intended for tests and debugging: checks that live nodes only point
        at live nodes, that reference counts match the actual number of
        fanin/PO references and that fanout sets are consistent.
        """
        expected_refs = [0] * len(self._fanins)
        for node in range(len(self._fanins)):
            if self._dead[node] or self._fanins[node] is None:
                continue
            for f in self._fanins[node]:
                fn = node_of(f)
                assert not self._dead[fn], (
                    f"live node {node} has dead fanin node {fn}"
                )
                expected_refs[fn] += 1
                assert node in self._fanouts[fn], (
                    f"fanout set of {fn} misses parent {node}"
                )
        for po in self._pos:
            fn = node_of(po)
            assert not self._dead[fn], f"primary output references dead node {fn}"
            expected_refs[fn] += 1
        for node in range(len(self._fanins)):
            if self._dead[node]:
                continue
            assert self._ref[node] == expected_refs[node], (
                f"node {node}: ref count {self._ref[node]} != expected "
                f"{expected_refs[node]}"
            )

    def assign_from(self, other: "Mig") -> None:
        """Replace the contents of this network with a copy of ``other``.

        Used by the optimizers to roll back to the best intermediate result
        when a speculative reshape cycle did not pay off.
        """
        clone = other.copy()
        self._fanins = clone._fanins
        self._dead = clone._dead
        self._ref = clone._ref
        self._fanouts = clone._fanouts
        self._pis = clone._pis
        self._pi_names = clone._pi_names
        self._pos = clone._pos
        self._po_names = clone._po_names
        self._strash = clone._strash
        self._num_gates = clone._num_gates
        self.name = clone.name

    # ------------------------------------------------------------------ #
    # Debugging helpers
    # ------------------------------------------------------------------ #
    def to_expression(self, signal: int, max_depth: int = 12) -> str:
        """Render the cone of ``signal`` as a nested ``M(...)`` expression."""
        def render(sig: int, depth: int) -> str:
            node = node_of(sig)
            prefix = "!" if is_complemented(sig) else ""
            if node == CONST_NODE:
                return "1" if is_complemented(sig) else "0"
            if self.is_pi(node):
                return prefix + self._pi_names[self._pis.index(node)]
            if depth <= 0:
                return prefix + f"n{node}"
            a, b, c = self._fanins[node]
            return (
                prefix
                + "M("
                + ", ".join(render(s, depth - 1) for s in (a, b, c))
                + ")"
            )

        return render(signal, max_depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates}, depth={self.depth()})"
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _allocate_node(self, fanins: Optional[Tuple[int, int, int]]) -> int:
        node = len(self._fanins)
        self._fanins.append(fanins)
        self._dead.append(False)
        self._ref.append(0)
        self._fanouts.append(set())
        return node

    def _validate_signal(self, signal: int) -> None:
        node = node_of(signal)
        if node >= len(self._fanins) or node < 0:
            raise ValueError(f"signal {signal_repr(signal)} references unknown node")
        if self._dead[node]:
            raise ValueError(f"signal {signal_repr(signal)} references a dead node")

    def _deref(self, node: int) -> None:
        self._ref[node] -= 1
        if self._ref[node] == 0 and self.is_maj(node) and not self._dead[node]:
            self._take_out(node)

    def _take_out(self, node: int) -> None:
        """Remove a dead majority node and recursively release its fanins."""
        if self._dead[node] or self._fanins[node] is None:
            return
        self._dead[node] = True
        self._num_gates -= 1
        key = tuple(sorted(self._fanins[node]))
        if self._strash.get(key) == node:
            del self._strash[key]
        for f in self._fanins[node]:
            fn = node_of(f)
            self._fanouts[fn].discard(node)
            self._ref[fn] -= 1
            if self._ref[fn] == 0 and self.is_maj(fn) and not self._dead[fn]:
                self._take_out(fn)
        self._fanouts[node] = set()

    def _in_tfi(self, target: int, start: int) -> bool:
        """Return True when ``target`` is in the transitive fanin of ``start``."""
        if target == start:
            return True
        if self._fanins[start] is None:
            return False
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            fanins = self._fanins[node]
            if fanins is None:
                continue
            for f in fanins:
                fn = node_of(f)
                if fn == target:
                    return True
                if fn not in seen:
                    seen.add(fn)
                    stack.append(fn)
        return False


# ---------------------------------------------------------------------- #
# Module-level helpers (shared by Mig methods)
# ---------------------------------------------------------------------- #
def _simplify_maj(a: int, b: int, c: int) -> Optional[int]:
    """Apply the Ω.M axiom to a fanin triple; return the result signal or None."""
    if a == b or a == c:
        return a
    if b == c:
        return b
    if a == negate(b):
        return c
    if a == negate(c):
        return b
    if b == negate(c):
        return a
    return None


def _normalize_maj(a: int, b: int, c: int) -> Tuple[Tuple[int, int, int], bool]:
    """Canonicalise a fanin triple: sorted order, at most one complemented fanin.

    Returns the canonical triple and whether the output must be complemented
    (inverter propagation, axiom Ω.I).
    """
    num_complemented = (
        int(is_complemented(a)) + int(is_complemented(b)) + int(is_complemented(c))
    )
    out_compl = False
    if num_complemented >= 2:
        a, b, c = negate(a), negate(b), negate(c)
        out_compl = True
    return tuple(sorted((a, b, c))), out_compl
