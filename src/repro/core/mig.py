"""Majority-Inverter Graph (MIG) logic network.

This module implements the data structure introduced in Section III of the
paper: a homogeneous directed acyclic graph whose every internal node is a
three-input majority function ``M(a, b, c)`` and whose edges carry an
optional complementation attribute.

Design notes
------------
* Storage, structural hashing, fanout/ref-count bookkeeping, in-place
  substitution and the incremental topology/level caches live in the shared
  :class:`repro.network.base.LogicNetwork` kernel; this module contributes
  the majority-specific node semantics.
* Nodes are identified by dense integer indices.  Node ``0`` is the
  constant-0 node; primary inputs follow; majority gates are appended as
  they are created.
* Edges ("signals") are encoded as ``(node << 1) | complement`` integers,
  see :mod:`repro.core.signal`.
* Structural hashing is performed at node-creation time together with the
  trivial majority simplifications ``M(x, x, y) = x`` and
  ``M(x, x', y) = y`` (axiom Ω.M) and constant folding, so no structurally
  duplicated or trivially reducible node is ever materialised by
  :meth:`Mig.maj`.
* Node polarity is canonicalised on creation using inverter propagation
  (axiom Ω.I): a node never stores two or three complemented fanins; the
  complement is pushed to the output edge instead.
* The network supports in-place node substitution with automatic
  propagation (cascading strashing hits and Ω.M simplifications), which is
  the mechanism used by every optimization rule in
  :mod:`repro.core.rules`, :mod:`repro.core.size_opt` and
  :mod:`repro.core.depth_opt`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..network.base import LogicNetwork
from .signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    negate,
    node_of,
)

__all__ = ["Mig"]


class Mig(LogicNetwork):
    """A Majority-Inverter Graph.

    The public surface follows the vocabulary of the paper: primary
    inputs/outputs, majority nodes, complemented edges, size (number of
    majority nodes), depth (number of levels on the longest PI→PO path)
    and switching activity (see :mod:`repro.analysis.activity`).

    Example
    -------
    >>> mig = Mig()
    >>> x, y, z = (mig.add_pi(n) for n in "xyz")
    >>> f = mig.maj(x, y, z)
    >>> mig.add_po(f, "f")
    0
    >>> mig.num_gates
    1
    """

    GATE_KIND = "majority"
    # MAJ3 over the three fanin edge values: on-set {011, 101, 110, 111}.
    UNIFORM_GATE_TT = 0xE8

    def __init__(self) -> None:
        super().__init__()
        self.name = "mig"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def maj(self, a: int, b: int, c: int) -> int:
        """Create (or reuse) the majority node ``M(a, b, c)``.

        Trivial simplifications (axiom Ω.M and constant propagation through
        it) are applied eagerly, the fanins are sorted into canonical order
        and the node is looked up in the structural hash table before a new
        node is allocated.
        """
        for s in (a, b, c):
            self._validate_signal(s)

        simplified = _simplify_maj(a, b, c)
        if simplified is not None:
            return simplified

        fanins, out_compl = _normalize_maj(a, b, c)
        return self._create_gate(fanins, out_compl)

    # Derived operators ------------------------------------------------- #
    def and_(self, a: int, b: int) -> int:
        """AND via the majority generalisation ``M(a, b, 0)``."""
        return self.maj(a, b, CONST_FALSE)

    def or_(self, a: int, b: int) -> int:
        """OR via the majority generalisation ``M(a, b, 1)``."""
        return self.maj(a, b, CONST_TRUE)

    def nand_(self, a: int, b: int) -> int:
        return negate(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        return negate(self.or_(a, b))

    def xor_(self, a: int, b: int) -> int:
        """XOR built from two levels of majority nodes."""
        return self.maj(
            negate(self.and_(a, b)),
            self.or_(a, b),
            CONST_FALSE,
        )

    def xnor_(self, a: int, b: int) -> int:
        return negate(self.xor_(a, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        """If-then-else ``sel ? t : e`` expressed with majority nodes."""
        return self.or_(self.and_(sel, t), self.and_(negate(sel), e))

    def xor3_(self, a: int, b: int, c: int) -> int:
        """Three-input XOR (parity), the function of Fig. 1(a)."""
        return self.xor_(self.xor_(a, b), c)

    def and3_(self, a: int, b: int, c: int) -> int:
        return self.and_(self.and_(a, b), c)

    def or3_(self, a: int, b: int, c: int) -> int:
        return self.or_(self.or_(a, b), c)

    def minority(self, a: int, b: int, c: int) -> int:
        """Minority = complement of majority (the MIN-3 standard cell)."""
        return negate(self.maj(a, b, c))

    # ------------------------------------------------------------------ #
    # Kernel hooks (majority semantics)
    # ------------------------------------------------------------------ #
    def is_maj(self, node: int) -> bool:
        return self._fanins[node] is not None

    def _gate_simplify(self, fanins: Tuple[int, ...]) -> Optional[int]:
        return _simplify_maj(*fanins)

    def _strash_candidates(
        self, fanins: Tuple[int, ...]
    ) -> Iterable[Tuple[Tuple[int, ...], bool]]:
        yield tuple(sorted(fanins)), False
        yield tuple(sorted(f ^ 1 for f in fanins)), True

    def _gate_key(self, fanins: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(sorted(fanins))

    def _normalize_gate(self, fanins: Tuple[int, ...]) -> Tuple[Tuple[int, ...], bool]:
        return _normalize_maj(*fanins)

    def _eval_gate(self, values: List[int], fanins: Tuple[int, ...], mask: int) -> int:
        a, b, c = fanins
        va = self._edge_value(values, a, mask)
        vb = self._edge_value(values, b, mask)
        vc = self._edge_value(values, c, mask)
        return (va & vb) | (va & vc) | (vb & vc)

    def _compile_gate_eval(self, fanins: Tuple[int, ...]):
        # Fanin nodes and complement flags are constants of the compiled
        # program, so the per-pattern work is three list loads, up to
        # three XORs and the majority itself (values are pre-masked,
        # making ``v ^ mask`` the masked complement).
        a, b, c = fanins
        na, nb, nc = a >> 1, b >> 1, c >> 1
        ca, cb, cc = a & 1, b & 1, c & 1

        def evaluate(values: List[int], mask: int) -> int:
            va = values[na] ^ mask if ca else values[na]
            vb = values[nb] ^ mask if cb else values[nb]
            vc = values[nc] ^ mask if cc else values[nc]
            return (va & vb) | (va & vc) | (vb & vc)

        return evaluate

    def _build_gate(self, fanins: Tuple[int, ...]) -> int:
        return self.maj(*fanins)

    # ------------------------------------------------------------------ #
    # Debugging helpers
    # ------------------------------------------------------------------ #
    def to_expression(self, signal: int, max_depth: int = 12) -> str:
        """Render the cone of ``signal`` as a nested ``M(...)`` expression."""
        def render(sig: int, depth: int) -> str:
            node = node_of(sig)
            prefix = "!" if is_complemented(sig) else ""
            if node == CONST_NODE:
                return "1" if is_complemented(sig) else "0"
            if self.is_pi(node):
                return prefix + self._pi_names[self._pis.index(node)]
            if depth <= 0:
                return prefix + f"n{node}"
            a, b, c = self._fanins[node]
            return (
                prefix
                + "M("
                + ", ".join(render(s, depth - 1) for s in (a, b, c))
                + ")"
            )

        return render(signal, max_depth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates}, depth={self.depth()})"
        )


# ---------------------------------------------------------------------- #
# Module-level helpers (shared by Mig methods)
# ---------------------------------------------------------------------- #
def _simplify_maj(a: int, b: int, c: int) -> Optional[int]:
    """Apply the Ω.M axiom to a fanin triple; return the result signal or None."""
    if a == b or a == c:
        return a
    if b == c:
        return b
    if a == negate(b):
        return c
    if a == negate(c):
        return b
    if b == negate(c):
        return a
    return None


def _normalize_maj(a: int, b: int, c: int) -> Tuple[Tuple[int, int, int], bool]:
    """Canonicalise a fanin triple: sorted order, at most one complemented fanin.

    Returns the canonical triple and whether the output must be complemented
    (inverter propagation, axiom Ω.I).
    """
    num_complemented = (
        int(is_complemented(a)) + int(is_complemented(b)) + int(is_complemented(c))
    )
    out_compl = False
    if num_complemented >= 2:
        a, b, c = negate(a), negate(b), negate(c)
        out_compl = True
    return tuple(sorted((a, b, c))), out_compl
