r"""MIG size optimization (Algorithm 1 of the paper).

The optimizer alternates two processes for a user-defined number of
*effort* cycles:

``eliminate``
    Apply the majority axiom left-to-right (Ω.M\ :sub:`L→R`) and the
    distributivity axiom right-to-left (Ω.D\ :sub:`R→L`) over the whole
    network until no more nodes can be removed.

``reshape``
    When elimination is stuck in a local minimum, locally increase the
    number of common operands using associativity (Ω.A), complementary
    associativity (Ψ.C), relevance (Ψ.R) and substitution (Ψ.S), then run
    elimination again.

The network is modified in place; a :class:`SizeOptStats` record documents
what happened, which the tests and the benchmark harness rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from .mig import Mig
from .reshape import ReshapeParams, reshape
from .rules import sweep_majority, try_distributivity_rl

__all__ = ["SizeOptStats", "eliminate", "optimize_size"]


@dataclass
class SizeOptStats:
    """Summary of one :func:`optimize_size` run."""

    initial_size: int
    final_size: int
    initial_depth: int
    final_depth: int
    cycles: int
    eliminations: int
    reshape_rewrites: int
    runtime_s: float
    size_per_cycle: List[int] = field(default_factory=list)

    @property
    def size_reduction_percent(self) -> float:
        if self.initial_size == 0:
            return 0.0
        return 100.0 * (self.initial_size - self.final_size) / self.initial_size


def eliminate(mig: Mig, max_iterations: int = 8) -> int:
    """The elimination step: Ω.M (L→R) and Ω.D (R→L) to a fixpoint.

    Returns the number of nodes removed.
    """
    removed_total = 0
    for _ in range(max_iterations):
        removed = sweep_majority(mig)
        for node in list(mig.gates()):
            if mig.is_dead(node):
                continue
            before = mig.num_gates
            if try_distributivity_rl(mig, node):
                removed += before - mig.num_gates
        mig.cleanup()
        if removed == 0:
            break
        removed_total += removed
    return removed_total


def optimize_size(
    mig: Mig,
    effort: int = 2,
    reshape_params: Optional[ReshapeParams] = None,
) -> SizeOptStats:
    """Run Algorithm 1 (MIG-size optimization) in place.

    Parameters
    ----------
    mig:
        The network to optimize (modified in place).
    effort:
        Number of reshape/eliminate cycles (the paper's *effort* knob).
    reshape_params:
        Optional reshape tuning; by default relevance is allowed to grow the
        network by a couple of nodes because the following elimination pass
        usually reclaims them.
    """
    start = time.perf_counter()
    initial_size = mig.num_gates
    initial_depth = mig.depth()
    params = reshape_params or ReshapeParams(relevance_growth=2)

    eliminations = 0
    reshape_rewrites = 0
    size_per_cycle: List[int] = []
    cycles_run = 0
    best = mig.copy()

    for cycle in range(max(1, effort)):
        cycles_run = cycle + 1
        size_before_cycle = mig.num_gates

        cycle_eliminations = eliminate(mig)
        cycle_reshapes = reshape(mig, params)
        cycle_eliminations += eliminate(mig)
        eliminations += cycle_eliminations
        reshape_rewrites += cycle_reshapes

        if mig.num_gates < best.num_gates or (
            mig.num_gates == best.num_gates and mig.depth() < best.depth()
        ):
            best = mig.copy()
        size_per_cycle.append(mig.num_gates)
        if mig.num_gates >= size_before_cycle and cycle_reshapes == 0:
            # Neither elimination nor reshaping made progress: further
            # effort cycles cannot help.
            break

    if best.num_gates < mig.num_gates:
        # Speculative reshaping left the network larger than the best
        # intermediate result: roll back (size optimization never regresses).
        mig.assign_from(best)

    return SizeOptStats(
        initial_size=initial_size,
        final_size=mig.num_gates,
        initial_depth=initial_depth,
        final_depth=mig.depth(),
        cycles=cycles_run,
        eliminations=eliminations,
        reshape_rewrites=reshape_rewrites,
        runtime_s=time.perf_counter() - start,
        size_per_cycle=size_per_cycle,
    )
