"""MIG switching-activity optimization (Section IV-C of the paper).

The total switching activity of a MIG is reduced along two axes:

1. *size reduction* — fewer nodes switch less; the optimizer simply reuses
   Algorithm 1 (:func:`repro.core.size_opt.optimize_size`);
2. *probability shaping* — nodes whose output probability is close to 0.5
   toggle the most; relevance (Ψ.R) and substitution (Ψ.S) can replace a
   reconvergent operand with probability ≈ 0.5 by one whose probability is
   close to 0 or 1, as in the example of Fig. 2(d).

Because the probability of every node depends on its whole fanin cone, the
probability-shaping step evaluates the global activity before and after a
candidate rewrite on a working copy and keeps only improving rewrites.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .mig import Mig
from .reshape import ReshapeParams
from .rules import DEFAULT_CONE_BOUND, cone_nodes, rebuild_cone
from .signal import is_complemented, negate, negate_if, node_of
from .size_opt import SizeOptStats, optimize_size

__all__ = ["ActivityOptStats", "optimize_activity"]


@dataclass
class ActivityOptStats:
    """Summary of one :func:`optimize_activity` run."""

    initial_size: int
    final_size: int
    initial_activity: float
    final_activity: float
    size_opt_stats: SizeOptStats
    relevance_rewrites: int
    runtime_s: float

    @property
    def activity_reduction_percent(self) -> float:
        if self.initial_activity == 0:
            return 0.0
        return 100.0 * (self.initial_activity - self.final_activity) / self.initial_activity


def optimize_activity(
    mig: Mig,
    effort: int = 2,
    pi_probabilities: Optional[Mapping[str, float]] = None,
    max_candidates: int = 200,
    cone_bound: int = DEFAULT_CONE_BOUND,
) -> ActivityOptStats:
    """Reduce the total switching activity of ``mig`` in place."""
    from ..analysis.activity import total_switching_activity

    start = time.perf_counter()
    initial_size = mig.num_gates
    initial_activity = total_switching_activity(mig, pi_probabilities)

    size_stats = optimize_size(
        mig, effort=effort, reshape_params=ReshapeParams(relevance_growth=0)
    )

    relevance_rewrites = _shape_probabilities(
        mig,
        pi_probabilities=pi_probabilities,
        max_candidates=max_candidates,
        cone_bound=cone_bound,
    )

    return ActivityOptStats(
        initial_size=initial_size,
        final_size=mig.num_gates,
        initial_activity=initial_activity,
        final_activity=total_switching_activity(mig, pi_probabilities),
        size_opt_stats=size_stats,
        relevance_rewrites=relevance_rewrites,
        runtime_s=time.perf_counter() - start,
    )


def _shape_probabilities(
    mig: Mig,
    pi_probabilities: Optional[Mapping[str, float]],
    max_candidates: int,
    cone_bound: int,
) -> int:
    """Relevance-driven probability shaping (the Fig. 2(d) move)."""
    from ..analysis.activity import signal_probabilities, total_switching_activity

    rewrites = 0
    probabilities = signal_probabilities(mig, pi_probabilities)
    activity = total_switching_activity(mig, pi_probabilities)
    candidates = _rank_candidates(mig, probabilities)[:max_candidates]

    for node in candidates:
        if mig.is_dead(node) or not mig.is_maj(node):
            continue
        improved = _try_activity_relevance(
            mig, node, probabilities, activity, pi_probabilities, cone_bound
        )
        if improved is not None:
            activity = improved
            probabilities = signal_probabilities(mig, pi_probabilities)
            rewrites += 1
    mig.cleanup()
    return rewrites


def _rank_candidates(mig: Mig, probabilities: Dict[int, float]):
    """Nodes ordered by how 'toggly' their fanins are (p close to 0.5 first)."""
    def toggle_pressure(node: int) -> float:
        total = 0.0
        for f in mig.fanins(node):
            p = probabilities.get(node_of(f), 0.5)
            total += 2.0 * p * (1.0 - p)
        return total

    gates = [n for n in mig.gates()]
    return sorted(gates, key=toggle_pressure, reverse=True)


def _try_activity_relevance(
    mig: Mig,
    node: int,
    probabilities: Dict[int, float],
    current_activity: float,
    pi_probabilities: Optional[Mapping[str, float]],
    cone_bound: int,
):
    """Apply Ψ.R on ``node`` if it lowers the global activity.

    Returns the new activity when a rewrite was committed, else ``None``.
    """
    from ..analysis.activity import total_switching_activity

    fanins = mig.fanins(node)
    best = None
    for z_pos in range(3):
        z = fanins[z_pos]
        if not mig.is_maj(node_of(z)):
            continue
        others = [fanins[m] for m in range(3) if m != z_pos]
        for x, y in (others, list(reversed(others))):
            x_node = node_of(x)
            px = probabilities.get(x_node, 0.5)
            py = probabilities.get(node_of(y), 0.5)
            # Only replace a "toggly" operand by a strongly biased one.
            if abs(px - 0.5) > 0.2 or abs(py - 0.5) < 0.3:
                continue
            cone = cone_nodes(mig, z, cone_bound)
            if cone is None:
                continue
            if not any(node_of(f) == x_node for n in cone for f in mig.fanins(n)):
                continue
            best = (z, x, y, x_node)
            break
        if best is not None:
            break
    if best is None:
        return None

    z, x, y, x_node = best
    size_before = mig.num_gates
    replacement_target = negate_if(negate(y), is_complemented(x))
    new_z = rebuild_cone(mig, z, {x_node: replacement_target}, cone_bound)
    if new_z is None:
        return None
    replacement = mig.maj(x, y, new_z)
    if not mig.substitute(node, replacement):
        mig.cleanup()
        return None
    mig.cleanup()
    new_activity = total_switching_activity(mig, pi_probabilities)
    if new_activity < current_activity and mig.num_gates <= size_before + 1:
        return new_activity
    # The rewrite did not pay off; it is functionally correct, so keeping it
    # would be safe, but we prefer to keep the activity monotone.  Rebuild is
    # not reversible in place, so simply report no improvement.
    return new_activity if new_activity < current_activity else None
