"""Per-network code generation: specialized simulation and CNF kernels.

The interpreted kernels optimize *per gate* — a closure call or a
truth-table dispatch for every gate of every simulation word, a graph
re-walk for every CNF encode.  This package optimizes *per network*, in
the meta-function style: flatten the network once into a small IR
(:mod:`.ir`), make all specialization decisions at generation time, and
emit artifacts that the hot loops then run without any per-gate
dispatch:

* :mod:`.simgen` — a flat Python function per network for word-parallel
  simulation: one straight-line bitwise statement per gate over local
  variables, constants folded, complement masks pre-applied.  The same
  generated source also runs over numpy ``uint64`` word blocks
  (:meth:`SimKernel.simulate_blocks`).
* :mod:`.clausegen` — the network's Tseitin clause database as a frozen,
  cheaply picklable :class:`ClauseStream` (flat literal/offset arrays),
  bulk-loadable into a solver without per-clause re-validation.
* :mod:`.graphsim` — incrementally compiled evaluation of an append-only
  :class:`~repro.verify.cnf.GateGraph`, for loops (the SAT sweeper) that
  simulate a graph while still growing it.

Generation / invalidation contract
----------------------------------
Generated artifacts are memoized on the owning object and keyed on the
kernel's monotone ``_mutation_serial`` (for :class:`LogicNetwork`) or
the append-only construction shape (for :class:`MappedNetlist` and
:class:`GateGraph`):

* every structural mutation bumps the serial, so the first consumer to
  run after a mutation regenerates; unchanged networks hit a dict
  lookup.  There is no partial patching of generated code — staleness is
  detected by serial comparison only, the same protocol as
  ``network/cuts.py``'s managers and the PR 5 closure program;
* compiled artifacts hold code objects and are process-local: the
  kernel's ``__getstate__`` strips them (``_codegen_ir``,
  ``_codegen_kernel``, ``_codegen_clauses`` and their serial keys), and
  an unpickled network regenerates on first use.  :class:`ClauseStream`
  itself *is* picklable — that is how swept miters ship to
  ``final_workers`` pools;
* compilation costs one ``exec`` per ~:data:`~repro.codegen.simgen.CHUNK_GATES`
  gates.  ``LogicNetwork.simulate_patterns`` therefore tiers adaptively:
  the first call at a new serial runs the cheap closure program and only
  a repeat call at the same serial compiles the generated kernel, so
  mutate-once/simulate-once loops (NPN derivation, mutation fuzzing)
  never pay the compile.

When to prefer the numpy variant
--------------------------------
``simulate()`` computes each gate as Python big-int operations — already
word-parallel, and the faster backend up to roughly ``2**18`` pattern
bits, because numpy pays a fixed per-ufunc dispatch cost per gate while
big-int bitwise ops on moderate widths run at memory speed.  Beyond that
(multi-hundred-kilobit pattern sets: batched exhaustive blocks, large
sample sweeps) ``simulate_blocks()`` pulls ahead; measured crossover on
this container sits between ``2**17`` and ``2**18`` bits, which is what
:data:`~repro.codegen.simgen.NUMPY_MIN_BITS` (used by
``simulate_auto``) encodes.  Both backends run the *same* generated
source and return bit-identical results; numpy availability is probed
with :func:`has_numpy`.
"""

from .clausegen import ClauseStream, clause_stream, miter_stream
from .graphsim import GraphSimKernel
from .ir import SimProgram, netlist_ir, network_ir
from .simgen import (
    SimKernel,
    compile_netlist_kernel,
    compile_network_kernel,
    has_numpy,
)

__all__ = [
    "ClauseStream",
    "GraphSimKernel",
    "SimKernel",
    "SimProgram",
    "clause_stream",
    "compile_netlist_kernel",
    "compile_network_kernel",
    "has_numpy",
    "miter_stream",
    "netlist_ir",
    "network_ir",
]
