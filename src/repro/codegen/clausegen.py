"""Picklable Tseitin clause streams generated from the shared traversal.

Every SAT call used to re-walk the gate graph: a fresh
:class:`~repro.verify.cnf.GateGraph`, one :func:`encode_network` pass per
network, then per-clause ``add_clause`` into the solver.  This module
makes the encode a *generated artifact* with the same lifecycle as the
simulation kernels of :mod:`.simgen`:

* :func:`clause_stream` encodes a network once per mutation serial —
  through the exact :class:`GateGraph` normalization/strashing machinery,
  driven by the same cached :func:`~repro.codegen.ir.network_ir`
  traversal the simulation kernel uses — and caches the result on the
  network, so repeated SAT construction on an unchanged network is a
  dictionary lookup;
* :class:`ClauseStream` stores the clause database as two flat integer
  arrays (literals plus clause offsets).  That makes the snapshot cheap
  to pickle — the form in which :func:`repro.verify.sweep.sat_sweep`
  ships a swept miter to its ``final_workers`` pool — and
  :meth:`ClauseStream.load_into` rebuilds a solver through the unchecked
  bulk loader (:meth:`SatSolver.add_clause_unchecked`), skipping the
  per-literal tautology/duplicate scan that is redundant for clauses a
  ``GateGraph`` emitted.

Clause content and order are identical to ``graph.clauses``, which keeps
every worker's verdict a pure function of ``(stream, pair, budget)`` —
the determinism contract of :mod:`repro.parallel`.
"""

from __future__ import annotations

from array import array
from typing import Iterator, List, Optional, Sequence, Tuple

from ..verify.cnf import GateGraph, encode_network

__all__ = ["ClauseStream", "clause_stream", "miter_stream"]


class ClauseStream:
    """A frozen CNF snapshot: flat literal/offset arrays plus metadata."""

    __slots__ = ("num_pis", "num_vars", "po_lits", "_lits", "_offsets")

    def __init__(
        self,
        num_pis: int,
        num_vars: int,
        clauses: Sequence[Sequence[int]],
        po_lits: Tuple[int, ...] = (),
    ) -> None:
        self.num_pis = num_pis
        self.num_vars = num_vars
        self.po_lits = tuple(po_lits)
        lits = array("q")
        offsets = array("q", [0])
        for clause in clauses:
            lits.extend(clause)
            offsets.append(len(lits))
        self._lits = lits
        self._offsets = offsets

    @classmethod
    def from_graph(
        cls, graph: GateGraph, po_lits: Sequence[int] = ()
    ) -> "ClauseStream":
        return cls(graph.num_pis, graph.num_vars, graph.clauses, tuple(po_lits))

    @property
    def num_clauses(self) -> int:
        return len(self._offsets) - 1

    def clauses(self) -> Iterator[List[int]]:
        """Iterate the clauses as literal lists (identical to the graph's)."""
        lits = self._lits
        offsets = self._offsets
        for i in range(len(offsets) - 1):
            yield list(lits[offsets[i] : offsets[i + 1]])

    def clause_lists(self) -> List[List[int]]:
        return list(self.clauses())

    def load_into(self, solver) -> bool:
        """Rebuild ``solver`` from the snapshot via the unchecked fast path.

        Safe because ``GateGraph`` emits clean clauses: no tautologies or
        duplicate literals, and the only unit is the constant pin, whose
        variable no other clause mentions.  Returns the solver's
        satisfiability-so-far flag, like ``add_clause``.
        """
        solver.ensure_vars(self.num_vars)
        lits = self._lits
        offsets = self._offsets
        ok = True
        for i in range(len(offsets) - 1):
            ok = solver.add_clause_unchecked(lits[offsets[i] : offsets[i + 1]].tolist())
            if not ok:
                break
        return ok

    def pi_lit(self, index: int) -> int:
        if not 0 <= index < self.num_pis:
            raise IndexError(f"PI index {index} out of range")
        return (1 + index) << 1

    def __reduce__(self):
        # array('q') pickles efficiently on its own; rebuild through the
        # raw state rather than re-chunking clauses on load.
        return (
            _rebuild_stream,
            (self.num_pis, self.num_vars, self.po_lits,
             self._lits.tobytes(), self._offsets.tobytes()),
        )


def _rebuild_stream(num_pis, num_vars, po_lits, lits_bytes, offsets_bytes):
    stream = ClauseStream.__new__(ClauseStream)
    stream.num_pis = num_pis
    stream.num_vars = num_vars
    stream.po_lits = po_lits
    lits = array("q")
    lits.frombytes(lits_bytes)
    offsets = array("q")
    offsets.frombytes(offsets_bytes)
    stream._lits = lits
    stream._offsets = offsets
    return stream


# --------------------------------------------------------------------- #
# Per-network cached generation
# --------------------------------------------------------------------- #
def clause_stream(network) -> ClauseStream:
    """The Tseitin clause stream of ``network``, serial-cached.

    Clause content, order and PO literals are exactly what
    ``encode_network`` into a fresh :class:`GateGraph` produces; the
    stream is regenerated whenever the network's mutation serial moves
    and the cache is stripped by the kernel's ``__getstate__`` (see the
    package docstring).
    """
    serial = getattr(network, "_mutation_serial", None)
    if serial is not None:
        cached = network.__dict__.get("_codegen_clauses")
        if (
            cached is not None
            and network.__dict__.get("_codegen_clauses_serial") == serial
        ):
            return cached
    graph = GateGraph(network.num_pis)
    po_lits = encode_network(graph, network)
    stream = ClauseStream.from_graph(graph, po_lits)
    if serial is not None:
        network.__dict__["_codegen_clauses"] = stream
        network.__dict__["_codegen_clauses_serial"] = serial
    return stream


def miter_stream(first, second) -> ClauseStream:
    """Encode a two-network miter into one snapshot.

    ``po_lits`` holds the per-output XOR literals followed by the
    aggregated miter output (the layout of
    :class:`~repro.verify.cnf.MiterCnf`, flattened); asserting the last
    literal asks a solver loaded from the stream for a distinguishing
    pattern.  Not cached: miters pair two networks, so the single-network
    serial key does not apply.
    """
    from ..verify.cnf import build_miter

    miter = build_miter(first, second)
    return ClauseStream.from_graph(
        miter.graph, tuple(miter.xors) + (miter.output,)
    )
