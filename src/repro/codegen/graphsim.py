"""Incrementally compiled simulation kernels over a Tseitin gate graph.

The SAT sweeper (:mod:`repro.verify.sweep`) re-simulates its entire
:class:`~repro.verify.cnf.GateGraph` gate list every time refuted-pair
counterexample patterns are folded into the candidate signatures.  A
:class:`GraphSimKernel` removes the per-gate interpreter
(:func:`repro.verify.cnf.eval_gate`'s truth-table dispatch) from that
loop while tracking a graph that *grows while it is being swept*:

* a ``GateGraph`` is append-only — gates are only ever added, never
  retargeted — so compiled code never goes stale; the kernel simply
  compiles the gate list in slabs of :data:`CHUNK_GATES` as they fill up
  and evaluates the not-yet-compiled tail through ``eval_gate``;
* slabs use the ``store_all`` spill policy of
  :func:`repro.codegen.simgen.compile_gate_slab` (every output is written
  back to the shared value buffer) because future gates and the final
  primary-output scan may read any variable.

Variable 0 (the pinned constant-false) and the primary-input variables
are read from the caller's buffer, so the kernel composes with whatever
pattern source the sweeper uses — full-width signatures or the batched
refutation columns.
"""

from __future__ import annotations

from typing import Callable, List

from ..verify.cnf import GateGraph, eval_gate
from .simgen import compile_gate_slab

__all__ = ["GraphSimKernel", "CHUNK_GATES"]

#: Gates per compiled slab.  Smaller than the network-kernel chunk size:
#: slabs compile *during* a sweep, so each compilation must stay cheap
#: relative to the simulation work it will save.
CHUNK_GATES = 512


class GraphSimKernel:
    """A growing compiled evaluator for one (append-only) gate graph."""

    def __init__(self, graph: GateGraph, chunk_gates: int = CHUNK_GATES) -> None:
        self.graph = graph
        self.chunk_gates = chunk_gates
        self._slabs: List[Callable] = []
        self._compiled = 0  # gates covered by the compiled slabs

    def _extend(self) -> None:
        gates = self.graph.gates
        chunk = self.chunk_gates
        while len(gates) - self._compiled >= chunk:
            slab_gates = [
                (var, tt, lits)
                for var, tt, lits in gates[self._compiled : self._compiled + chunk]
            ]
            self._slabs.append(
                compile_gate_slab(
                    slab_gates,
                    f"_graph_slab{len(self._slabs)}",
                    store_all=True,
                )
            )
            self._compiled += chunk

    def eval_into(self, values: List[int], mask: int) -> None:
        """Evaluate every gate into ``values`` (indexed by variable).

        The caller seeds ``values[0] = 0`` and the primary-input
        variables; on return every gate variable holds its pattern, the
        same contract as iterating ``eval_gate`` over the gate list.
        """
        self._extend()
        for slab in self._slabs:
            slab(values, mask, 0)
        gates = self.graph.gates
        for var, tt, lits in gates[self._compiled :]:
            values[var] = eval_gate(values, tt, lits, mask)
