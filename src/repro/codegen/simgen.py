"""Source-level generation of word-parallel simulation kernels.

One :class:`~repro.codegen.ir.SimProgram` is lowered to straight-line
Python — one bitwise statement per gate over local variables, constants
folded and complement masks pre-applied at generation time — compiled
once and reused for every simulation call until the network mutates.
Compared with the per-gate closure program of
:meth:`LogicNetwork.simulate_patterns_interpreted` this removes the whole
per-gate dispatch (closure call, fanin decode) from the inner loop; the
emitted statement for a majority gate is literally::

    V[97] = v97 = (v41 & (v83 ^ mask)) | (v41 & v90) | ((v83 ^ mask) & v90)

Generation details:

* gates whose truth table is (the complement of) a parity function lower
  to an XOR chain with a single folded ``^ mask``; everything else lowers
  to the OR of the prime-implicant cover of its on-set (AND gates become
  one cube, MAJ three), reusing the cover cache of
  :mod:`repro.verify.cnf`;
* constant fanins are folded into the truth table before emission, so the
  constant slot never appears in an expression;
* programs larger than :data:`CHUNK_GATES` are split into several
  compiled functions sharing a dense value buffer ``V``; values produced
  and consumed inside one chunk stay in fast locals, only chunk-crossing
  and primary-output slots are spilled.  The buffer is owned by the
  kernel and reused across calls (every slot is written before it is
  read, so no per-call clearing is needed).

The same generated source runs two backends: Python big-int words
(:meth:`SimKernel.simulate`, any pattern width in one call) and — because
the code is pure ``& | ^`` over whatever the operands are — numpy
``uint64`` word blocks (:meth:`SimKernel.simulate_blocks`), where the
mask operand becomes an all-ones word array.  See the package docstring
for when the numpy variant pays off.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from ..verify.cnf import _cached_cover, _tt_restrict
from .ir import SimProgram, netlist_ir, network_ir

try:  # pragma: no cover - exercised indirectly via has_numpy()
    import numpy as _np
except Exception:  # pragma: no cover - the image bakes numpy in
    _np = None

__all__ = [
    "SimKernel",
    "compile_network_kernel",
    "compile_netlist_kernel",
    "gate_expression",
    "has_numpy",
    "CHUNK_GATES",
    "NUMPY_MIN_BITS",
]

#: Gates per compiled chunk function.  Bounds single-function compile time
#: (and bytecode size) on huge networks; one chunk is the common case.
CHUNK_GATES = 3000

#: Pattern width (bits) from which :meth:`SimKernel.simulate_auto` routes
#: to the numpy word-block backend.  Measured crossover: Python big-int
#: bitwise ops win below ~2^18 bits (numpy pays fixed per-ufunc overhead
#: per gate), numpy wins above.
NUMPY_MIN_BITS = 1 << 18


def has_numpy() -> bool:
    """Whether the numpy word-block backend is available."""
    return _np is not None


# --------------------------------------------------------------------- #
# Expression emission
# --------------------------------------------------------------------- #
def _parity_tt(k: int) -> int:
    tt = 0
    for m in range(1 << k):
        if bin(m).count("1") & 1:
            tt |= 1 << m
    return tt


def _edge_expr(name: str, complemented: int) -> str:
    return f"({name} ^ mask)" if complemented else name


def gate_expression(tt: int, edges: Sequence[int], name_of) -> str:
    """Python expression computing ``tt`` over the edge values.

    ``edges`` use the ``(slot << 1) | compl`` encoding with slot 0 pinned
    to constant 0; ``name_of(slot)`` supplies the operand names.  The
    emitted expression assumes operands are pre-masked words and ``mask``
    / ``zero`` are in scope.
    """
    ops = list(edges)
    i = 0
    while i < len(ops):  # fold constant fanins at generation time
        if ops[i] >> 1 == 0:
            tt = _tt_restrict(tt, len(ops), i, ops[i] & 1)
            del ops[i]
        else:
            i += 1
    k = len(ops)
    full = (1 << (1 << k)) - 1
    tt &= full
    if tt == 0:
        return "zero"
    if tt == full:
        return "mask"
    if k == 1:
        return _edge_expr(name_of(ops[0] >> 1), (ops[0] & 1) ^ (tt == 0b01))
    parity = _parity_tt(k)
    if tt in (parity, parity ^ full):
        flip = 1 if tt != parity else 0
        for e in ops:
            flip ^= e & 1
        chain = " ^ ".join(name_of(e >> 1) for e in ops)
        return chain + (" ^ mask" if flip else "")
    terms = []
    for cube_mask, cube_value in _cached_cover(tt, k, 1):
        lits = [
            _edge_expr(name_of(ops[i] >> 1), (ops[i] & 1) ^ (((cube_value >> i) & 1) ^ 1))
            for i in range(k)
            if (cube_mask >> i) & 1
        ]
        terms.append(" & ".join(lits))
    # '&' binds tighter than '|', so cube terms need no extra parentheses.
    return " | ".join(f"({t})" if len(terms) > 1 and " & " in t else t for t in terms)


# --------------------------------------------------------------------- #
# Chunk compilation
# --------------------------------------------------------------------- #
def compile_gate_slab(
    gates: Sequence[Tuple[int, int, Tuple[int, ...]]],
    label: str,
    defined: frozenset = frozenset(),
    spill: frozenset = frozenset(),
    store_all: bool = False,
) -> Callable:
    """Compile one run of gates into ``fn(V, mask, zero)``.

    ``defined`` slots are produced inside this slab's scope by an earlier
    statement of the same function (unused by callers today but mirrors
    the chunker's contract); every other referenced slot is loaded from
    ``V`` once at the top.  Outputs in ``spill`` (or all outputs with
    ``store_all``, the append-only :class:`GraphSimKernel` policy) are
    written back to ``V`` at their definition via a chained assignment, so
    in-slab consumers still read the local.
    """
    lines = [f"def {label}(V, mask, zero):"]
    local = set(defined)
    loads = []
    body = []
    for out, tt, edges in gates:
        for e in edges:
            slot = e >> 1
            if slot and slot not in local:
                local.add(slot)
                loads.append(f"    v{slot} = V[{slot}]")
        expr = gate_expression(tt, edges, lambda s: f"v{s}")
        if store_all or out in spill:
            body.append(f"    V[{out}] = v{out} = {expr}")
        else:
            body.append(f"    v{out} = {expr}")
        local.add(out)
    body.append("    return None")
    source = "\n".join(lines + loads + body)
    namespace: dict = {}
    exec(compile(source, f"<codegen:{label}>", "exec"), namespace)
    fn = namespace[label]
    fn.__codegen_source__ = source
    return fn


def _compile_program_chunks(program: SimProgram, name: str) -> List[Callable]:
    gates = program.gates
    num_chunks = max(1, (len(gates) + CHUNK_GATES - 1) // CHUNK_GATES)
    starts = [i * CHUNK_GATES for i in range(num_chunks)]
    chunk_of = {}
    for index, start in enumerate(starts):
        for out, _, _ in gates[start : start + CHUNK_GATES]:
            chunk_of[out] = index
    # A slot is spilled when something outside its defining chunk reads it:
    # a gate of a later chunk or a primary output.
    spill = set()
    for index, start in enumerate(starts):
        for _, _, edges in gates[start : start + CHUNK_GATES]:
            for e in edges:
                slot = e >> 1
                if slot in chunk_of and chunk_of[slot] != index:
                    spill.add(slot)
    for e in program.po_edges:
        if (e >> 1) in chunk_of:
            spill.add(e >> 1)
    frozen_spill = frozenset(spill)
    return [
        compile_gate_slab(
            gates[start : start + CHUNK_GATES],
            f"_{_sanitize(name)}_c{index}",
            spill=frozen_spill,
        )
        for index, start in enumerate(starts)
    ]


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name) or "net"


# --------------------------------------------------------------------- #
# The kernel object
# --------------------------------------------------------------------- #
class SimKernel:
    """A compiled word-parallel simulator for one frozen network state.

    Holds compiled code objects; never pickled (the owning network strips
    it in ``__getstate__`` and regenerates after unpickling).  Not
    thread-safe: the value buffer is reused across calls.
    """

    def __init__(self, program: SimProgram, name: str = "net") -> None:
        self.program = program
        self.name = name
        self._chunks = _compile_program_chunks(program, name)
        self._values: List[object] = [0] * program.num_slots

    @property
    def num_gates(self) -> int:
        return len(self.program.gates)

    def source(self) -> str:
        """The generated source of all chunks (debugging/tests)."""
        return "\n\n".join(c.__codegen_source__ for c in self._chunks)

    def simulate_auto(
        self, pi_patterns: Sequence[int], num_bits: int
    ) -> List[int]:
        """Backend-selecting simulation: numpy beyond :data:`NUMPY_MIN_BITS`."""
        if _np is not None and num_bits >= NUMPY_MIN_BITS:
            return self.simulate_blocks(pi_patterns, num_bits)
        return self.simulate(pi_patterns, num_bits)

    def simulate(self, pi_patterns: Sequence[int], num_bits: int) -> List[int]:
        """Bit-parallel simulation; drop-in for ``simulate_patterns``."""
        program = self.program
        if len(pi_patterns) != len(program.pi_slots):
            raise ValueError(
                f"expected {len(program.pi_slots)} PI patterns, "
                f"got {len(pi_patterns)}"
            )
        mask = (1 << num_bits) - 1
        values = self._values
        for slot, pattern in zip(program.pi_slots, pi_patterns):
            values[slot] = pattern & mask
        for chunk in self._chunks:
            chunk(values, mask, 0)
        out = []
        for e in program.po_edges:
            slot = e >> 1
            if slot == 0:
                out.append(mask if e & 1 else 0)
            else:
                v = values[slot]
                out.append(v ^ mask if e & 1 else v)
        return out

    # ------------------------------------------------------------------ #
    # numpy word-block backend
    # ------------------------------------------------------------------ #
    def simulate_blocks(
        self, pi_patterns: Sequence[int], num_bits: int
    ) -> List[int]:
        """Simulation over numpy ``uint64`` word blocks.

        Same contract and results as :meth:`simulate`; the pattern words
        live in numpy arrays so each gate costs a few vectorized ufunc
        calls instead of big-int operations.  Worth it for very wide
        pattern sets (:data:`NUMPY_MIN_BITS` and up); see the package
        docstring.  Raises ``RuntimeError`` when numpy is unavailable.
        """
        if _np is None:
            raise RuntimeError("numpy backend requested but numpy is unavailable")
        program = self.program
        if len(pi_patterns) != len(program.pi_slots):
            raise ValueError(
                f"expected {len(program.pi_slots)} PI patterns, "
                f"got {len(pi_patterns)}"
            )
        words = (num_bits + 63) // 64
        nbytes = words * 8
        int_mask = (1 << num_bits) - 1
        full = _np.full(words, _np.uint64(0xFFFFFFFFFFFFFFFF))
        zero = _np.zeros(words, dtype=_np.uint64)
        values = self._values
        for slot, pattern in zip(program.pi_slots, pi_patterns):
            values[slot] = _np.frombuffer(
                (pattern & int_mask).to_bytes(nbytes, "little"), dtype=_np.uint64
            )
        for chunk in self._chunks:
            chunk(values, full, zero)
        out = []
        for e in program.po_edges:
            slot = e >> 1
            if slot == 0:
                out.append(int_mask if e & 1 else 0)
                continue
            v = values[slot]
            if e & 1:
                v = v ^ full
            out.append(int.from_bytes(v.tobytes(), "little") & int_mask)
        return out


def compile_network_kernel(network) -> SimKernel:
    """Generate and compile the simulation kernel of a logic network."""
    return SimKernel(network_ir(network), getattr(network, "name", "net"))


def compile_netlist_kernel(netlist) -> SimKernel:
    """Generate and compile the simulation kernel of a mapped netlist."""
    return SimKernel(netlist_ir(netlist), getattr(netlist, "name", "netlist"))
