"""The shared intermediate representation behind all generated kernels.

Every generator in this package — the word-parallel simulation kernels of
:mod:`.simgen` and the Tseitin clause streams of :mod:`.clausegen` — and
the CNF encoder of :mod:`repro.verify.cnf` consume the *same* flattened
view of a network, built from **one** cached topological traversal:

``SimProgram``
    * ``num_slots`` value slots; slot 0 is pinned to constant 0;
    * ``pi_slots[i]`` is the slot driven by the ``i``-th primary input;
    * ``gates`` is a tuple of ``(out_slot, tt, in_edges)`` triples in
      topological order, where ``tt`` is the *pure* local function of the
      gate over its already-complemented edge values (majority, AND, a
      library cell's function) and each edge is ``(slot << 1) | compl``
      in the usual signal encoding;
    * ``po_edges`` are the primary-output edges in the same encoding.

For :class:`~repro.network.base.LogicNetwork` subclasses the slots *are*
the node ids and the gate list is the PO-reachable topological order, so
building the program costs one cached-topology walk; the per-gate truth
table comes from the ``UNIFORM_GATE_TT`` class attribute when the network
type has a single gate function (majority for MIGs, AND for AIGs) and
from :meth:`~repro.network.base.LogicNetwork.gate_truth_table` otherwise.
Programs are cached on the network keyed by ``_mutation_serial`` (see the
package docstring for the invalidation contract).

:class:`~repro.mapping.netlist.MappedNetlist` instances get the same
treatment with string nets resolved to dense slots; their cache key is the
netlist's construction shape (instance/PI/PO/constant counts — netlists
are append-only, nothing is ever retargeted in place).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

__all__ = ["SimProgram", "network_ir", "netlist_ir"]


class SimProgram(NamedTuple):
    """Flattened, type-agnostic gate program over dense value slots."""

    num_slots: int
    pi_slots: Tuple[int, ...]
    #: ``(out_slot, tt, in_edges)`` per gate, topologically ordered.
    gates: Tuple[Tuple[int, int, Tuple[int, ...]], ...]
    po_edges: Tuple[int, ...]


# --------------------------------------------------------------------- #
# Logic networks (MIG / AIG / any LogicNetwork subclass)
# --------------------------------------------------------------------- #
def network_ir(network) -> SimProgram:
    """The :class:`SimProgram` of a logic network, serial-cached.

    The cache lives on the network object (``_codegen_ir`` /
    ``_codegen_ir_serial``) and is invalidated by comparing against the
    kernel's monotone ``_mutation_serial``; objects without a mutation
    serial (duck-typed network views) are rebuilt on every call.
    """
    serial = getattr(network, "_mutation_serial", None)
    if serial is not None:
        cached = network.__dict__.get("_codegen_ir")
        if cached is not None and network.__dict__.get("_codegen_ir_serial") == serial:
            return cached
    program = _build_network_ir(network)
    if serial is not None:
        network.__dict__["_codegen_ir"] = program
        network.__dict__["_codegen_ir_serial"] = serial
    return program


def _build_network_ir(network) -> SimProgram:
    uniform_tt = getattr(network, "UNIFORM_GATE_TT", None)
    fanins = network.fanins
    gates: List[Tuple[int, int, Tuple[int, ...]]] = []
    if uniform_tt is not None:
        for node in network.topological_order():
            gates.append((node, uniform_tt, tuple(fanins(node))))
    else:
        truth = network.gate_truth_table
        for node in network.topological_order():
            gates.append((node, truth(node), tuple(fanins(node))))
    return SimProgram(
        num_slots=network.num_nodes,
        pi_slots=tuple(network.pi_nodes()),
        gates=tuple(gates),
        po_edges=tuple(network.po_signals()),
    )


# --------------------------------------------------------------------- #
# Mapped standard-cell netlists
# --------------------------------------------------------------------- #
_CELL_TT_CACHE: Dict[str, int] = {}


def _projection(i: int, k: int) -> int:
    num_bits = 1 << k
    block = (1 << (1 << i)) - 1
    pattern = 0
    for start in range(1 << i, num_bits, 1 << (i + 1)):
        pattern |= block << start
    return pattern


def cell_truth_table(cell) -> int:
    """Truth table of a library cell, cached by cell name."""
    tt = _CELL_TT_CACHE.get(cell.name)
    if tt is None:
        k = cell.num_inputs
        mask = (1 << (1 << k)) - 1
        tt = cell.evaluate([_projection(i, k) for i in range(k)], mask)
        _CELL_TT_CACHE[cell.name] = tt
    return tt


def netlist_shape_key(netlist) -> Tuple[int, int, int, int]:
    """Structural cache key of a netlist: its append-only construction shape."""
    return (
        len(netlist.instances),
        len(netlist.pi_names),
        len(netlist.po_nets),
        len(netlist._net_constants),
    )


def netlist_ir(netlist) -> SimProgram:
    """The :class:`SimProgram` of a mapped netlist, shape-cached."""
    key = netlist_shape_key(netlist)
    cached = netlist.__dict__.get("_codegen_ir")
    if cached is not None and netlist.__dict__.get("_codegen_ir_key") == key:
        return cached
    program = _build_netlist_ir(netlist)
    netlist.__dict__["_codegen_ir"] = program
    netlist.__dict__["_codegen_ir_key"] = key
    return program


def _build_netlist_ir(netlist) -> SimProgram:
    # Slot 0 is the pinned constant; nets resolve to edges so that
    # constant-true nets become complemented edges to slot 0 and undriven
    # nets default to constant 0, mirroring the interpreted simulator.
    net_edge: Dict[str, int] = {}
    pi_slots: List[int] = []
    next_slot = 1
    for name in netlist.pi_names:
        net_edge[name] = next_slot << 1
        pi_slots.append(next_slot)
        next_slot += 1
    for net, value in netlist._net_constants.items():
        net_edge[net] = 1 if value else 0
    gates: List[Tuple[int, int, Tuple[int, ...]]] = []
    library = netlist.library
    for instance in netlist.instances:
        cell = library[instance.cell]
        in_edges = tuple(net_edge.get(n, 0) for n in instance.inputs)
        out_slot = next_slot
        next_slot += 1
        net_edge[instance.output] = out_slot << 1
        gates.append((out_slot, cell_truth_table(cell), in_edges))
    return SimProgram(
        num_slots=next_slot,
        pi_slots=tuple(pi_slots),
        gates=tuple(gates),
        po_edges=tuple(net_edge.get(n, 0) for n in netlist.po_nets),
    )
