"""Signal-probability and switching-activity estimation.

The *activity* column of Table I is the total switching activity of the
network: the sum over all gates of the probability that the gate output
toggles between two independent input vectors.  Under the standard
temporal-independence model used by the paper this is ``2 · p · (1 − p)``
per gate, where ``p`` is the static probability that the gate output is
logic 1.

Probabilities are propagated from the primary inputs through the majority
nodes assuming spatial independence of the fanins (the usual first-order
model); primary inputs default to ``p = 0.5`` but arbitrary input profiles
can be supplied, which is what the activity-optimization example of
Fig. 2(d) relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Mapping, Optional, Sequence

from ..core.signal import CONST_NODE, is_complemented, node_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mig import Mig

__all__ = [
    "signal_probabilities",
    "node_switching_activities",
    "total_switching_activity",
    "estimate_activity_by_simulation",
]


def signal_probabilities(
    mig: "Mig", pi_probabilities: Optional[Mapping[str, float]] = None
) -> Dict[int, float]:
    """Static probability of each live node being logic 1.

    ``pi_probabilities`` maps primary-input names to their probability of
    being 1; missing inputs default to 0.5.
    """
    probs: Dict[int, float] = {CONST_NODE: 0.0}
    pi_probabilities = pi_probabilities or {}
    for node, name in zip(mig.pi_nodes(), mig.pi_names()):
        p = float(pi_probabilities.get(name, 0.5))
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability of input {name!r} out of range: {p}")
        probs[node] = p

    for node in mig.topological_order():
        a, b, c = mig.fanins(node)
        pa = _edge_probability(probs, a)
        pb = _edge_probability(probs, b)
        pc = _edge_probability(probs, c)
        # P[M(a,b,c) = 1] under fanin independence.
        probs[node] = pa * pb + pa * pc + pb * pc - 2.0 * pa * pb * pc
    return probs


def node_switching_activities(
    mig: "Mig", pi_probabilities: Optional[Mapping[str, float]] = None
) -> Dict[int, float]:
    """Per-gate switching activity ``2·p·(1−p)`` for all majority gates."""
    probs = signal_probabilities(mig, pi_probabilities)
    return {
        node: 2.0 * probs[node] * (1.0 - probs[node])
        for node in mig.topological_order()
    }


def total_switching_activity(
    mig: "Mig", pi_probabilities: Optional[Mapping[str, float]] = None
) -> float:
    """Total switching activity: the *Activity* metric of Table I."""
    return sum(node_switching_activities(mig, pi_probabilities).values())


def estimate_activity_by_simulation(
    mig: "Mig",
    num_vectors: int = 2048,
    seed: int = 1,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> float:
    """Monte-Carlo estimate of the total switching activity.

    Serves as an independent cross-check of the analytic propagation (the
    analytic model assumes fanin independence, which reconvergence breaks;
    simulation does not).  Uses bit-parallel random simulation.
    """
    import random

    rng = random.Random(seed)
    pi_probabilities = pi_probabilities or {}
    patterns = []
    for name in mig.pi_names():
        p = float(pi_probabilities.get(name, 0.5))
        bits = 0
        for i in range(num_vectors):
            if rng.random() < p:
                bits |= 1 << i
        patterns.append(bits)

    mask = (1 << num_vectors) - 1
    values: Dict[int, int] = {CONST_NODE: 0}
    for node, pattern in zip(mig.pi_nodes(), patterns):
        values[node] = pattern

    def edge_value(signal: int) -> int:
        v = values[node_of(signal)]
        return (~v) & mask if is_complemented(signal) else v

    total = 0.0
    for node in mig.topological_order():
        a, b, c = mig.fanins(node)
        va, vb, vc = edge_value(a), edge_value(b), edge_value(c)
        out = (va & vb) | (va & vc) | (vb & vc)
        values[node] = out
        ones = bin(out).count("1")
        p = ones / num_vectors
        total += 2.0 * p * (1.0 - p)
    return total


def _edge_probability(probs: Mapping[int, float], signal: int) -> float:
    p = probs[node_of(signal)]
    return 1.0 - p if is_complemented(signal) else p
