"""Network quality metrics reported in the paper's experimental section.

Collects the three logic-level figures of merit of Table I (size, depth,
switching activity) plus the composite ``size · depth · activity`` figure
of merit used in Section V-A.2, for any network type that exposes the
small protocol implemented by :class:`repro.core.mig.Mig` and
:class:`repro.aig.aig.Aig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

__all__ = [
    "NetworkMetrics",
    "measure_mig",
    "measure_aig",
    "measure_network",
    "measure_activity",
    "geometric_improvement",
]


@dataclass(frozen=True)
class NetworkMetrics:
    """Size / depth / activity snapshot of one logic network."""

    name: str
    num_pis: int
    num_pos: int
    size: int
    depth: int
    activity: float
    runtime_s: float = 0.0

    @property
    def figure_of_merit(self) -> float:
        """The ``size · depth · activity`` composite used in Section V-A."""
        return float(self.size) * float(self.depth) * float(self.activity)

    def as_row(self) -> tuple:
        return (
            self.name,
            f"{self.num_pis}/{self.num_pos}",
            self.size,
            self.depth,
            round(self.activity, 2),
            round(self.runtime_s, 2),
        )


def measure_mig(
    mig,
    name: Optional[str] = None,
    runtime_s: float = 0.0,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> NetworkMetrics:
    """Measure a MIG (size = majority nodes, depth = levels, activity)."""
    from .activity import total_switching_activity

    return NetworkMetrics(
        name=name or mig.name,
        num_pis=mig.num_pis,
        num_pos=mig.num_pos,
        size=mig.num_gates,
        depth=mig.depth(),
        activity=total_switching_activity(mig, pi_probabilities),
        runtime_s=runtime_s,
    )


def measure_aig(
    aig,
    name: Optional[str] = None,
    runtime_s: float = 0.0,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> NetworkMetrics:
    """Measure an AIG (size = AND nodes, depth = levels, activity)."""
    from ..aig.activity import total_switching_activity as aig_activity

    return NetworkMetrics(
        name=name or aig.name,
        num_pis=aig.num_pis,
        num_pos=aig.num_pos,
        size=aig.num_gates,
        depth=aig.depth(),
        activity=aig_activity(aig, pi_probabilities),
        runtime_s=runtime_s,
    )


def measure_activity(
    network, pi_probabilities: Optional[Mapping[str, float]] = None
) -> float:
    """Total switching activity of a MIG or AIG (dispatch on gate arity).

    Used by the pass-manager engine (:mod:`repro.flows.engine`) when a
    pipeline is asked to record per-pass activity, so a single pass
    implementation works for both network types.
    """
    if getattr(network, "is_maj", None) is not None:
        from .activity import total_switching_activity

        return total_switching_activity(network, pi_probabilities)
    from ..aig.activity import total_switching_activity as aig_activity

    return aig_activity(network, pi_probabilities)


def measure_network(
    network,
    name: Optional[str] = None,
    runtime_s: float = 0.0,
    pi_probabilities: Optional[Mapping[str, float]] = None,
) -> NetworkMetrics:
    """Measure any :class:`~repro.network.base.LogicNetwork` subclass."""
    return NetworkMetrics(
        name=name or network.name,
        num_pis=network.num_pis,
        num_pos=network.num_pos,
        size=network.num_gates,
        depth=network.depth(),
        activity=measure_activity(network, pi_probabilities),
        runtime_s=runtime_s,
    )


def geometric_improvement(reference: float, value: float) -> float:
    """Relative improvement of ``value`` over ``reference`` in percent.

    Positive numbers mean ``value`` is smaller (better) than ``reference``,
    matching the way the paper quotes "-18% depth w.r.t. AIG".
    """
    if reference == 0:
        return 0.0
    return 100.0 * (reference - value) / reference
