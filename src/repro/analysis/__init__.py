"""Analysis utilities: switching activity, probabilities and quality metrics."""

from .activity import (
    estimate_activity_by_simulation,
    node_switching_activities,
    signal_probabilities,
    total_switching_activity,
)
from .metrics import NetworkMetrics, geometric_improvement, measure_aig, measure_mig

__all__ = [
    "signal_probabilities",
    "node_switching_activities",
    "total_switching_activity",
    "estimate_activity_by_simulation",
    "NetworkMetrics",
    "measure_mig",
    "measure_aig",
    "geometric_improvement",
]
