"""Extract windows as standalone sub-networks and stitch results back.

The other half of partition-parallel optimization
(:mod:`repro.parallel.partition` decides *what* a window is; this module
moves one across the process boundary and back):

* :func:`extract_window` — rebuild a :class:`~repro.parallel.partition
  .Window` as a standalone network of the same class: frontier pins
  become primary inputs (in sorted-node-id order), window outputs become
  primary outputs (in topological order).  The sub-network goes through
  the class's public gate builders, so it is simplified and strashed
  exactly like any other network — and it pickles to worker processes
  like any other network.
* :func:`stitch_window` — rebuild an (optimized) sub-network's gates
  into the parent through ``_build_gate`` and replace each window output
  via the kernel's :meth:`~repro.network.base.LogicNetwork.substitute`
  machinery, which cascades structural-hash hits and simplifications
  through the fanout cones.

Stitching is **serial and deterministic**: windows are stitched in
window order regardless of which worker optimized them, so the final
network is a pure function of ``(parent structure, partition spec,
per-window results)`` — and per-window results are pure functions of the
extracted sub-networks.  That is what extends the package's determinism
contract to windows (bit-identical stitched networks at any worker
count).

Replacement-map discipline
--------------------------
Substitution cascades can retarget or collapse nodes *ahead* of the
window being stitched, so later windows must not trust raw node ids:

* every window output ``o`` records its replacement signal in ``repl``
  (the identity signal when the substitution was a structural no-op or
  was skipped), and later windows resolve their frontier pins through
  ``repl`` — a gate pin is always some earlier window's output, so the
  entry exists by construction;
* every replacement node is **pinned**
  (:meth:`~repro.network.base.LogicNetwork.pin_node`) for the duration
  of the stitch phase: a replacement that loses its last structural
  reference to a later cascade would otherwise be reclaimed while the
  map still points at it.  :func:`release_pins` drops the holds and
  sweeps the dangling remains at the end.

``substitute`` refuses (returns ``False``) when the replacement cone
reaches back through the output being replaced — possible when a
rebuilt gate strash-hits a node downstream of ``o``.  The stitch then
keeps the original output (functionally correct: stitching never
changes what any live node computes) and reports it in the stats.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.signal import CONST_NODE, make_signal, negate_if, node_of
from .partition import Window

__all__ = ["StitchStats", "extract_window", "stitch_window", "release_pins"]


@dataclass
class StitchStats:
    """Per-window outcome of one :func:`stitch_window` call."""

    substituted: int = 0  #: outputs replaced by a different node
    unchanged: int = 0  #: outputs whose rebuilt signal strashed onto themselves
    skipped_cycles: int = 0  #: substitutions refused by the cycle check
    pinned: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, int]:
        return {
            "substituted": self.substituted,
            "unchanged": self.unchanged,
            "skipped_cycles": self.skipped_cycles,
        }


def extract_window(net, window: Window):
    """Build ``window`` of ``net`` as a standalone same-class network."""
    sub = net.__class__()
    sub.name = f"{getattr(net, 'name', 'network')}.w{window.index}"
    mapping: Dict[int, int] = {CONST_NODE: make_signal(CONST_NODE)}
    for position, pin in enumerate(window.inputs):
        mapping[pin] = sub.add_pi(f"p{position}")
    for gate in window.gates:
        fanins = tuple(
            negate_if(mapping[node_of(f)], f & 1) for f in net.fanins(gate)
        )
        mapping[gate] = sub._build_gate(fanins)
    for position, output in enumerate(window.outputs):
        sub.add_po(mapping[output], f"q{position}")
    return sub


def stitch_window(
    net, window: Window, optimized, repl: Dict[int, int],
    stats: Optional[StitchStats] = None,
) -> StitchStats:
    """Rebuild ``optimized`` (a window sub-network) into ``net``.

    ``repl`` maps earlier window outputs to their current replacement
    signals; this call extends it with ``window``'s outputs.  Returns
    the stitch outcome; the pinned nodes recorded in it stay protected
    until :func:`release_pins`.

    Pin bookkeeping across failures: pass a caller-owned ``stats``
    object and every pin is recorded on it *as it is taken* — if this
    call raises partway through (interface mismatch aside, e.g. a kernel
    invariant tripping mid-rebuild), the pins taken so far are still on
    the caller's ledger and :func:`release_pins` in an error handler
    drops them.  The overlapped (pipelined) stitch path of
    :mod:`repro.flows.partitioned` relies on this: its ``finally`` block
    must be able to unwind a half-committed stitch without leaking
    refcounts on the parent network.  With ``stats=None`` a fresh object
    is created and returned (the pre-existing behavior, safe only when
    the caller treats a raise as fatal to the whole network).
    """
    if optimized.num_pis != len(window.inputs) or optimized.num_pos != len(
        window.outputs
    ):
        raise ValueError(
            f"window {window.index}: optimized sub-network interface "
            f"{optimized.num_pis}/{optimized.num_pos} does not match the "
            f"window's {len(window.inputs)}/{len(window.outputs)} pins"
        )
    if stats is None:
        stats = StitchStats()
    mapping: Dict[int, int] = {CONST_NODE: make_signal(CONST_NODE)}
    for pin, pi_node in zip(window.inputs, optimized.pi_nodes()):
        # A gate pin is an output of an earlier window, so its current
        # signal is in ``repl``; a primary-input pin maps to itself.
        mapping[pi_node] = repl.get(pin, make_signal(pin))
    for gate in optimized.topological_order():
        fanins = tuple(
            negate_if(mapping[node_of(f)], f & 1) for f in optimized.fanins(gate)
        )
        signal = net._build_gate(fanins)
        mapping[gate] = signal
        # Pin every rebuilt gate (fresh or strash hit) for the duration
        # of the stitch phase: the substitution cascades below can
        # otherwise reclaim a node this mapping still points at — a
        # strash hit downstream of an output being replaced, or a fresh
        # gate whose only reference died with a collapsed cone.
        net.pin_node(node_of(signal))
        stats.pinned.append(node_of(signal))
    for output, po_signal in zip(window.outputs, optimized.po_signals()):
        new_signal = negate_if(mapping[node_of(po_signal)], po_signal & 1)
        new_node = node_of(new_signal)
        # Pin again independently of the loop above: a sub-network PO
        # may point at a frontier pin or constant rather than a gate.
        net.pin_node(new_node)
        stats.pinned.append(new_node)
        if new_node == output:
            # The rebuilt cone strashed onto the original gate — the
            # optimizer found nothing here (or found the same structure).
            stats.unchanged += 1
            repl[output] = new_signal
        elif net.substitute(output, new_signal):
            stats.substituted += 1
            repl[output] = new_signal
        else:
            # Cycle refusal: the replacement cone reaches through
            # ``output``.  Keep the original node (still computes the
            # original function) and pin it for later windows' pins.
            stats.skipped_cycles += 1
            repl[output] = make_signal(output)
            net.pin_node(output)
            stats.pinned.append(output)
    return stats


def release_pins(net, stitch_stats: List[StitchStats]) -> int:
    """Drop every stitch-phase pin and sweep the dangling leftovers.

    Returns the number of nodes reclaimed by the final cleanup (rebuilt
    cones that every substitution rejected, plus replaced logic kept
    alive only by its pin).
    """
    for stats in stitch_stats:
        for node in stats.pinned:
            net.unpin_node(node)
        stats.pinned.clear()
    return net.cleanup()
