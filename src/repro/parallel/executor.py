"""Deterministic shard planner and chunked process-pool executor.

See the package docstring of :mod:`repro.parallel` for the
sharding/determinism contract.  The execution model:

1. :func:`plan_shards` orders item indices (longest-expected-first when
   per-item ``costs`` are given, original order otherwise) and groups
   them into contiguous chunks.  The plan is a pure function of
   ``(num_items, workers, chunk_size, costs)`` — no randomness, no
   wall-clock input — so repeated runs shard identically.
2. :func:`parallel_map` submits one future per chunk to a
   ``ProcessPoolExecutor``; the pool hands chunks to idle workers
   dynamically (which is what absorbs uneven task costs), and every
   result travels back tagged with its original index, so the returned
   list is always in input order no matter which worker finished first.
3. Worker warm-up: the ``warmup`` callable runs in the *parent* before
   the pool is created — under the default ``fork`` start method every
   worker inherits the hot caches (NPN canonical map, structure DB,
   imported kernels) for free — and is installed as the pool initializer
   as well, so ``spawn``/``forkserver`` platforms warm up explicitly.

``workers <= 1`` (or a single item, or running inside a pool worker)
degrades to an in-process loop over the *same* chunk runner, so the
serial fallback exercises the identical code path the workers run.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "OrderedCommitQueue",
    "TaskRecord",
    "ParallelReport",
    "default_workers",
    "plan_shards",
    "parallel_map",
    "parallel_map_stream",
    "warm_worker",
]


def default_workers() -> int:
    """Worker count used when a caller passes ``workers=None``.

    ``REPRO_WORKERS`` overrides; otherwise the CPU count, floored at 1.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip()
    if raw:
        return max(1, int(raw))
    return max(1, os.cpu_count() or 1)


def warm_worker() -> None:
    """Preload the import-once kernels and the NPN rewriting database.

    Idempotent and cheap when already warm: the canonical map and the
    structure database are process-level caches, and the database load
    goes through the validated disk cache (~7ms for all 222x2 classes)
    when one exists.  Called in the parent before a pool forks, and as
    the pool initializer for non-fork start methods.
    """
    from ..aig import aig as _aig  # noqa: F401  (import-once kernels)
    from ..core import mig as _mig  # noqa: F401
    from ..network import npn

    npn.npn_canonical(0)  # derive the 65,536-entry canonical map once
    for kind in ("mig", "aig"):
        for rep in npn.npn_representatives():
            npn.get_structure(kind, rep)
    npn.flush_structure_cache()


@dataclass
class TaskRecord:
    """Per-task execution metrics (aggregated by the corpus runners)."""

    index: int
    label: str
    runtime_s: float
    worker_pid: int


@dataclass
class ParallelReport:
    """Outcome of one :func:`parallel_map` call.

    ``results[i]`` is the result of ``fn(items[i])`` — input order,
    independent of completion order.  ``tasks`` carries one
    :class:`TaskRecord` per item (sorted by index); ``busy_s`` is the sum
    of task runtimes, so ``busy_s / wall_s`` estimates pool utilization.
    """

    results: List[object]
    tasks: List[TaskRecord] = field(default_factory=list)
    workers: int = 1
    num_shards: int = 0
    wall_s: float = 0.0
    parallel: bool = False

    @property
    def busy_s(self) -> float:
        return sum(t.runtime_s for t in self.tasks)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "num_shards": self.num_shards,
            "parallel": self.parallel,
            "wall_s": round(self.wall_s, 3),
            "busy_s": round(self.busy_s, 3),
            "tasks": [
                {
                    "index": t.index,
                    "label": t.label,
                    "runtime_s": round(t.runtime_s, 3),
                    "worker_pid": t.worker_pid,
                }
                for t in self.tasks
            ],
        }


def plan_shards(
    num_items: int,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    costs: Optional[Sequence[float]] = None,
) -> List[List[int]]:
    """Deterministic shard plan: a list of chunks of item indices.

    With ``costs`` (one expected cost per item) the indices are submitted
    longest-first (ties broken by index), the classical LPT heuristic —
    with dynamic chunk-to-worker assignment this bounds the makespan by
    ``max(longest_task, total/workers)`` instead of letting a heavy tail
    task start last.  Without costs the original order is kept.

    ``chunk_size`` defaults to 1 when costs are given (maximum balancing
    freedom) and to ``ceil(num_items / (4 * workers))`` otherwise, which
    caps scheduling overhead at ~4 round-trips per worker.
    """
    if num_items <= 0:
        return []
    workers = default_workers() if workers is None else max(1, workers)
    if costs is not None:
        if len(costs) != num_items:
            raise ValueError(
                f"expected {num_items} costs, got {len(costs)}"
            )
        order = sorted(range(num_items), key=lambda i: (-float(costs[i]), i))
    else:
        order = list(range(num_items))
    if chunk_size is None:
        chunk_size = 1 if costs is not None else max(
            1, math.ceil(num_items / (4 * workers))
        )
    chunk_size = max(1, chunk_size)
    return [order[i:i + chunk_size] for i in range(0, num_items, chunk_size)]


def _run_chunk(fn, chunk: List[Tuple[int, object]], labels: List[str]):
    """Worker-side chunk runner; returns ``(index, result, runtime, pid)``.

    Also the serial-fallback runner, so both paths execute identically.
    """
    pid = os.getpid()
    out = []
    for (index, item), label in zip(chunk, labels):
        start = time.perf_counter()
        try:
            result = fn(item)
        except Exception as exc:
            raise RuntimeError(
                f"parallel task {label!r} (item {index}) failed: {exc}"
            ) from exc
        out.append((index, result, time.perf_counter() - start, pid))
    return out


#: Environment marker set inside every pool worker (survives both fork
#: and spawn): ``ProcessPoolExecutor`` workers are *not* daemonic on
#: modern Pythons, so the daemon flag alone cannot detect them.
_WORKER_ENV_FLAG = "REPRO_IN_POOL_WORKER"


def _in_pool_worker() -> bool:
    """True inside a multiprocessing pool worker (no nested pools).

    A task that itself calls :func:`parallel_map` — e.g. an
    ``optimize_many`` job whose flow runs ``sat_sweep(final_workers=N)``
    — degrades to the in-process path instead of oversubscribing the
    host with ``workers**2`` processes.
    """
    return (
        multiprocessing.current_process().daemon
        or os.environ.get(_WORKER_ENV_FLAG) == "1"
    )


def parallel_map(
    fn: Callable,
    items: Sequence[object],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    costs: Optional[Sequence[float]] = None,
    labels: Optional[Sequence[str]] = None,
    warmup: Optional[Callable[[], None]] = warm_worker,
    initializer: Optional[Callable] = None,
    initargs: tuple = (),
    on_result: Optional[Callable[[int, object, float, int], None]] = None,
) -> ParallelReport:
    """Map ``fn`` over ``items`` on a process pool; results in input order.

    ``fn`` must be a picklable (module-level) callable and a pure
    function of its item.  ``warmup`` runs once in the parent before the
    pool starts (forked workers inherit its effect) and inside every
    worker as part of the pool initializer; ``initializer(*initargs)``
    additionally installs per-call shared state (e.g. a CNF snapshot)
    in each worker without re-pickling it per task.

    ``on_result(index, result, runtime_s, worker_pid)`` — when given —
    runs in the *parent* for every finished task as soon as its chunk
    completes, in completion order (input order only under the serial
    fallback).  This is the streaming hook of the service layer: a
    consumer can persist or publish per-item results while other shards
    are still running instead of barriering on the whole corpus.  The
    returned report is unchanged (input order) either way.

    Degrades to an in-process loop — same chunk runner, same record
    shape, items still pickle-round-tripped into private copies,
    ``parallel=False`` — when ``workers <= 1``, there is at most one
    item, or the caller is itself a pool worker.
    """
    items = list(items)
    workers = default_workers() if workers is None else max(1, workers)
    if labels is None:
        labels = [f"task{i}" for i in range(len(items))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(items):
            raise ValueError(f"expected {len(items)} labels, got {len(labels)}")

    shards = plan_shards(len(items), workers, chunk_size=chunk_size, costs=costs)
    start = time.perf_counter()
    use_pool = workers > 1 and len(items) > 1 and not _in_pool_worker()

    if warmup is not None:
        warmup()

    raw: List[tuple] = []
    if not use_pool:
        if initializer is not None:
            initializer(*initargs)
        for shard in shards:
            # Round-trip the items through pickle exactly like the pool
            # path does: tasks receive a private copy either way, so a
            # task that mutates its item (in-place optimization flows)
            # behaves identically at every worker count and the caller's
            # objects are never touched.
            chunk_records = _run_chunk(
                fn,
                [(i, pickle.loads(pickle.dumps(items[i]))) for i in shard],
                [labels[i] for i in shard],
            )
            raw.extend(chunk_records)
            if on_result is not None:
                for record in chunk_records:
                    on_result(*record)
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(items)),
            initializer=_worker_init,
            initargs=(warmup, initializer, initargs),
        ) as pool:
            futures = [
                pool.submit(
                    _run_chunk,
                    fn,
                    [(i, items[i]) for i in shard],
                    [labels[i] for i in shard],
                )
                for shard in shards
            ]
            # Chunks are consumed as they complete so ``on_result`` can
            # stream; the first task exception cancels pending chunks
            # (fail fast) instead of burning the rest of the corpus.
            try:
                for future in as_completed(futures):
                    chunk_records = future.result()
                    raw.extend(chunk_records)
                    if on_result is not None:
                        for record in chunk_records:
                            on_result(*record)
            except BaseException:
                for future in futures:
                    future.cancel()
                raise

    results: List[object] = [None] * len(items)
    tasks: List[TaskRecord] = []
    for index, result, runtime_s, pid in raw:
        results[index] = result
        tasks.append(TaskRecord(index, labels[index], runtime_s, pid))
    tasks.sort(key=lambda t: t.index)
    return ParallelReport(
        results=results,
        tasks=tasks,
        workers=workers,
        num_shards=len(shards),
        wall_s=time.perf_counter() - start,
        parallel=use_pool,
    )


def _worker_init(warmup, initializer, initargs) -> None:
    """Pool initializer: mark the worker, warm it, install shared state."""
    os.environ[_WORKER_ENV_FLAG] = "1"
    if warmup is not None:
        warmup()
    if initializer is not None:
        initializer(*initargs)


class OrderedCommitQueue:
    """Reorder buffer: commit streamed results in strict item-index order.

    Results of a parallel run arrive in completion order; consumers whose
    commit step is order-sensitive — the window stitcher of
    :mod:`repro.flows.partitioned`, where substitution cascades make the
    final structure depend on stitch order — feed each ``(index, value)``
    through :meth:`offer` and receive ``commit(index, value)`` callbacks
    in index order only: result *i* is committed the moment *i* and every
    earlier index have been offered, while later indices are still in
    flight.  Out-of-order arrivals wait in the buffer (``peak`` records
    the high-water mark — the observability hook for how much reordering
    the schedule actually produced).

    :meth:`hold` / :meth:`release` gate the commit side without blocking
    the offer side: a holder can keep buffering results while some
    precondition of committing is not yet met (the pipelined stitcher
    holds until every window has been extracted, because commits mutate
    the structure extraction reads).  Commits run synchronously inside
    ``offer``/``release`` on the calling thread — the queue adds ordering,
    never concurrency.
    """

    def __init__(
        self, commit: Callable[[int, object], None], start: int = 0
    ) -> None:
        self._commit = commit
        self._next = start
        self._buffer: dict = {}
        self._held = False
        self.peak = 0
        self.committed = 0

    @property
    def next_index(self) -> int:
        """The index the next commit is waiting for."""
        return self._next

    @property
    def buffered(self) -> int:
        """Results currently parked out of order (or behind a hold)."""
        return len(self._buffer)

    def hold(self) -> None:
        """Gate commits: offers keep buffering until :meth:`release`."""
        self._held = True

    def release(self) -> None:
        """Lift the commit gate and flush everything now in order."""
        self._held = False
        self._flush()

    def offer(self, index: int, value: object) -> None:
        """Buffer one result; commit it (and successors) when in order."""
        if index < self._next or index in self._buffer:
            raise ValueError(f"result index {index} offered twice")
        self._buffer[index] = value
        if len(self._buffer) > self.peak:
            self.peak = len(self._buffer)
        self._flush()

    def _flush(self) -> None:
        while not self._held and self._next in self._buffer:
            value = self._buffer.pop(self._next)
            index = self._next
            self._next += 1
            self._commit(index, value)
            self.committed += 1


def parallel_map_stream(
    fn: Callable,
    items: Iterable[object],
    workers: Optional[int] = None,
    lookahead: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    warmup: Optional[Callable[[], None]] = warm_worker,
    on_result: Optional[Callable[[int, object, float, int], None]] = None,
) -> ParallelReport:
    """Streaming :func:`parallel_map`: lazy items, bounded lookahead.

    ``items`` is consumed **lazily** — at most ``lookahead`` items
    (default ``2 * workers``) are materialized-and-unfinished at any
    moment, so an expensive producer (window extraction over a
    million-gate network) overlaps with worker execution instead of
    barriering before it, and the parent never holds the whole item list.
    Items are submitted in producer order, one task per item; results
    stream back through ``on_result(index, result, runtime_s,
    worker_pid)`` in completion order, and the returned report carries
    them in input order like :func:`parallel_map`.

    No LPT reordering: a lazy producer's costs are unknown ahead of time,
    and in-order submission is what keeps an
    :class:`OrderedCommitQueue` consumer's reorder buffer small (early
    indices return early).  The serial fallback (``workers <= 1`` or
    running inside a pool worker) pulls one item at a time, runs it
    through the same chunk runner (with the same pickle round-trip), and
    fires ``on_result`` before pulling the next — so producer code that
    runs *after* its last ``yield`` still runs after every item finished,
    exactly like the pool path.

    The first task exception cancels everything pending and propagates
    (fail fast); the producer is not pulled again after a failure.
    """
    workers = default_workers() if workers is None else max(1, workers)

    def _label(index: int) -> str:
        if labels is not None and index < len(labels):
            return str(labels[index])
        return f"task{index}"

    start = time.perf_counter()
    use_pool = workers > 1 and not _in_pool_worker()
    if warmup is not None:
        warmup()

    raw: List[tuple] = []
    iterator = iter(items)
    submitted = 0
    if not use_pool:
        for item in iterator:
            index = submitted
            submitted += 1
            chunk_records = _run_chunk(
                fn,
                [(index, pickle.loads(pickle.dumps(item)))],
                [_label(index)],
            )
            raw.extend(chunk_records)
            if on_result is not None:
                for record in chunk_records:
                    on_result(*record)
    else:
        if lookahead is None:
            lookahead = 2 * workers
        lookahead = max(1, lookahead)
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_worker_init,
            initargs=(warmup, None, ()),
        ) as pool:
            pending: dict = {}
            exhausted = False

            def _top_up() -> None:
                nonlocal submitted, exhausted
                while not exhausted and len(pending) < lookahead:
                    try:
                        item = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    future = pool.submit(
                        _run_chunk,
                        fn,
                        [(submitted, item)],
                        [_label(submitted)],
                    )
                    pending[future] = submitted
                    submitted += 1

            try:
                _top_up()
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    # ``done`` is a set: iterate in submission order so the
                    # stream of on_result calls is as deterministic as the
                    # completion times allow.
                    for future in sorted(done, key=pending.get):
                        del pending[future]
                        chunk_records = future.result()
                        raw.extend(chunk_records)
                        if on_result is not None:
                            for record in chunk_records:
                                on_result(*record)
                    _top_up()
            except BaseException:
                for future in pending:
                    future.cancel()
                raise

    results: List[object] = [None] * submitted
    tasks: List[TaskRecord] = []
    for index, result, runtime_s, pid in raw:
        results[index] = result
        tasks.append(TaskRecord(index, _label(index), runtime_s, pid))
    tasks.sort(key=lambda t: t.index)
    return ParallelReport(
        results=results,
        tasks=tasks,
        workers=workers,
        num_shards=submitted,
        wall_s=time.perf_counter() - start,
        parallel=use_pool,
    )
