"""Shared corpus runner of the benchmark harness (sharded Table I sweeps).

Every per-benchmark workload of ``benchmarks/`` — the Table I
optimization and synthesis rows, the cut-rewriting acceptance sweep, the
SAT-CEC proof sweep — is a pure function of one benchmark name.  This
module holds those task functions (importable, hence shippable to worker
processes), a thin :func:`run_corpus` wrapper over
:func:`repro.parallel.parallel_map`, row (de)serialisation for the
``flows.report`` dataclasses, and the :class:`RowChannel` the pytest
harness uses to accumulate rows crash-/shard-safely.

Row channel
-----------
``pytest-xdist`` workers and independently sharded pytest invocations
(one benchmark per process in CI) cannot share module globals — the bug
the channel replaces.  A :class:`RowChannel` stores one JSON file per
row, written atomically (temp file + ``os.replace``), so any number of
concurrent writers land complete rows and a summary step in *any*
process reads back exactly the rows that ran.

Determinism
-----------
Task functions rebuild their benchmark from its name, touch no shared
mutable state and return plain data; results are therefore bit-identical
to a serial run at any worker count (the contract of
:mod:`repro.parallel`, asserted end-to-end by
``benchmarks/bench_parallel.py`` over sizes, depths, node-level
structural fingerprints and CEC verdicts).
"""

from __future__ import annotations

import functools
import hashlib
import re
import time
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..cache import atomic_write_json, load_json
from .executor import ParallelReport, parallel_map

__all__ = [
    "run_corpus",
    "structural_fingerprint",
    "canonical_fingerprint",
    "structural_row",
    "optimization_row",
    "synthesis_row",
    "rewrite_acceptance_row",
    "cec_prove_row",
    "optimization_from_row",
    "synthesis_from_row",
    "RowChannel",
]


def run_corpus(
    task,
    names: Sequence[str],
    workers: Optional[int] = None,
    costs: Optional[Sequence[float]] = None,
    **task_kwargs,
) -> ParallelReport:
    """Run ``task(name, **task_kwargs)`` per benchmark, sharded over a pool.

    ``task`` must be a module-level function (the ones in this module
    qualify); results come back in ``names`` order.
    """
    names = list(names)
    fn = functools.partial(task, **task_kwargs) if task_kwargs else task
    return parallel_map(fn, names, workers=workers, costs=costs, labels=names)


def structural_fingerprint(net) -> str:
    """SHA-256 over the exact live structure of a logic network.

    Covers node ids, fanin tuples (complement bits included), PI/PO
    names and PO signals — two networks fingerprint equal iff a serial
    and a sharded run produced literally the same graph.
    """
    payload = repr(
        (
            net.__class__.__name__,
            tuple(net.pi_nodes()),
            tuple(net._pi_names),
            tuple(net.po_signals()),
            tuple(net._po_names),
            tuple((node, net._fanins[node]) for node in net.topological_order()),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def canonical_fingerprint(net) -> str:
    """SHA-256 over a *node-id-independent* canonical form of a network.

    The content-address of the service result cache
    (:mod:`repro.service`): two networks hash equal iff they are the
    same DAG up to node renaming — same network kind, PI count and
    names, PO order and names, gate structure, sharing and complement
    bits — regardless of raw node ids or construction order, while
    :func:`structural_fingerprint` (the bit-identity contract of the
    parallel layer) keys on exact node ids.  Both kernels store fully
    symmetric gates (majority, AND) whose fanin tuples are *sorted by
    raw signal value* at normalization time, so the canonical form must
    also be fanin-order-insensitive; it is computed in two phases:

    1. a bottom-up structure hash per node (Merkle-style: constant,
       PI index, or the sorted multiset of (fanin hash, complement)
       pairs) — a pure function of each node's cone shape;
    2. a post-order traversal from the POs in order that visits every
       gate's fanins sorted by (structure hash, complement) and assigns
       canonical ids in completion order.  Gates are recorded as sorted
       multisets of (canonical fanin id, complement) literals, so
       *sharing is visible* — a shared cone and its duplicated
       expansion record differently (they optimize differently and must
       never collide).

    The key deliberately covers the network kind (class name) and the
    PI arity even when no gate references some PI: a MIG and an AIG, or
    the same cone under different input arities, must never collide.
    """
    fanins = net._fanins
    # Phase 1: id-independent structure hash per node (iterative DFS).
    struct: Dict[int, str] = {0: "C"}
    for index, node in enumerate(net.pi_nodes()):
        struct[node] = f"P{index}"
    po_roots = [po >> 1 for po in net.po_signals()]
    for root in po_roots:
        if root in struct:
            continue
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in struct:
                continue
            if expanded:
                parts = sorted((struct[f >> 1], f & 1) for f in fanins[node])
                struct[node] = hashlib.sha256(repr(parts).encode()).hexdigest()
            else:
                stack.append((node, True))
                for f in fanins[node]:
                    if (f >> 1) not in struct:
                        stack.append((f >> 1, False))
    # Phase 2: canonical ids by deterministic post-order (fanins visited
    # in sorted structure-hash order), gates as sorted literal multisets.
    canonical: Dict[int, int] = {0: 0}
    for index, node in enumerate(net.pi_nodes()):
        canonical[node] = index + 1
    next_id = len(canonical)
    gate_records: List[tuple] = []
    for root in po_roots:
        if root in canonical:
            continue
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node in canonical:
                continue
            if expanded:
                canonical[node] = next_id
                next_id += 1
                gate_records.append(
                    tuple(sorted((canonical[f >> 1], f & 1) for f in fanins[node]))
                )
            else:
                stack.append((node, True))
                ordered = sorted(
                    fanins[node], key=lambda f: (struct[f >> 1], f & 1)
                )
                for f in reversed(ordered):
                    if (f >> 1) not in canonical:
                        stack.append((f >> 1, False))
    payload = repr(
        (
            net.__class__.__name__,
            net.num_pis,
            tuple(net._pi_names),
            tuple(net._po_names),
            tuple((canonical[po >> 1], po & 1) for po in net.po_signals()),
            tuple(gate_records),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def structural_row(row: dict) -> dict:
    """A Table I row minus its measured runtimes.

    Wall time is a measurement, not a *result*: the determinism
    assertions (serial vs sharded rows bit-identical) compare rows
    through this projection.  One definition, shared by the benchmark
    and the tests, so a future non-deterministic row field is stripped
    in exactly one place.
    """
    stripped = dict(row)
    for flow in ("mig", "aig", "bdd"):
        metrics = stripped.get(flow)
        if isinstance(metrics, dict):
            stripped[flow] = {
                k: v for k, v in metrics.items() if k != "runtime_s"
            }
    return stripped


# --------------------------------------------------------------------- #
# Table I task functions (one benchmark name -> one plain-data row)
# --------------------------------------------------------------------- #
def optimization_row(
    name: str,
    rounds: int = 1,
    depth_effort: int = 1,
    include_bdd: bool = True,
    verify: bool = False,
) -> dict:
    """One Table I (top) row plus structural fingerprints.

    ``verify=True`` additionally proves the optimized MIG equivalent to
    a fresh build of the benchmark through the full CEC dispatch and
    records the verdict (an exception on inequivalence — an optimizer
    that breaks logic must fail the sweep, not log a row).
    """
    from ..flows.optimize import compare_optimization

    result = compare_optimization(
        name,
        rounds=rounds,
        depth_effort=depth_effort,
        include_bdd=include_bdd,
        keep_networks=True,
    )
    row = _optimization_to_row(result)
    row["mig_fingerprint"] = structural_fingerprint(result.mig_network)
    row["aig_fingerprint"] = structural_fingerprint(result.aig_network)
    row["bdd_fingerprint"] = (
        structural_fingerprint(result.bdd_network)
        if result.bdd_network is not None
        else None
    )
    if verify:
        from ..bench_circuits import build_benchmark
        from ..core.mig import Mig
        from ..verify import check_equivalence

        check = check_equivalence(
            build_benchmark(name, Mig), result.mig_network, num_random_vectors=256
        )
        if not check.equivalent:
            raise AssertionError(
                f"{name}: optimized MIG NOT equivalent (method={check.method})"
            )
        if not check.certified:
            raise AssertionError(
                f"{name}: optimized MIG NOT certified (budget-exhausted "
                f"{check.method} is not a proof)"
            )
        row["cec"] = {"equivalent": True, "method": check.method}
    return row


def synthesis_row(name: str, rounds: int = 1, depth_effort: int = 1) -> dict:
    """One Table I (bottom) row as plain data."""
    from ..flows.synthesis import compare_synthesis

    result = compare_synthesis(name, rounds=rounds, depth_effort=depth_effort)
    return _synthesis_to_row(result)


def rewrite_acceptance_row(name: str) -> dict:
    """The per-benchmark body of the cut-rewriting acceptance sweep.

    Raises on any violated obligation (equivalence, no-regression); the
    returned row feeds the cross-benchmark "strictly better on >= 3"
    assertion of ``benchmarks/acceptance_cut_rewrite.py``.
    """
    from ..aig.aig import Aig
    from ..aig.rewrite import rewrite
    from ..bench_circuits import build_benchmark
    from ..core import Mig, rewrite_mig
    from ..flows.mighty import mighty_optimize
    from ..mapping import map_aig, map_mig
    from ..verify import check_equivalence

    def _check(first, second, label):
        result = check_equivalence(first, second, num_random_vectors=512)
        if not result.equivalent:
            raise AssertionError(f"{label}: NOT equivalent ({result.method})")
        if not result.certified:
            raise AssertionError(
                f"{label}: NOT certified (budget-exhausted {result.method})"
            )

    start = time.time()
    # --- 1. AIG cut rewriting ----------------------------------------- #
    aig = build_benchmark(name, Aig)
    rewritten = rewrite(aig)
    _check(aig, rewritten, f"{name}/aig-rewrite")
    assert rewritten.num_gates <= aig.num_gates, name

    # --- 2. MIG cut rewriting ----------------------------------------- #
    mig = build_benchmark(name, Mig)
    reference = build_benchmark(name, Mig)
    size0, depth0 = mig.num_gates, mig.depth()
    rewrite_mig(mig)
    _check(mig, reference, f"{name}/mig-rewrite")
    assert mig.num_gates <= size0 and mig.depth() <= depth0, name

    # --- 3. mighty vs mighty + cut rewriting --------------------------- #
    algebraic = build_benchmark(name, Mig)
    mighty_optimize(algebraic, rounds=1, depth_effort=1, boolean_rewrite=False)
    combined = build_benchmark(name, Mig)
    mighty_optimize(combined, rounds=1, depth_effort=1, boolean_rewrite=True)
    _check(combined, reference, f"{name}/mighty+rewrite")
    alg = (algebraic.num_gates, algebraic.depth())
    comb = (combined.num_gates, combined.depth())
    assert comb[0] <= alg[0] and comb[1] <= alg[1], (name, alg, comb)

    # --- 4. mapping through the cut+NPN matcher ------------------------ #
    _check(reference, map_mig(reference), f"{name}/map-mig")
    _check(aig, map_aig(aig), f"{name}/map-aig")

    return {
        "benchmark": name,
        "aig_before": aig.num_gates,
        "aig_after": rewritten.num_gates,
        "mig_before": size0,
        "mig_after": mig.num_gates,
        "mig_depth_before": depth0,
        "mig_depth_after": mig.depth(),
        "mighty": alg,
        "mighty_rewrite": comb,
        "strictly_better": comb < alg,
        "runtime_s": round(time.time() - start, 3),
    }


def cec_prove_row(name: str, rounds: int = 1, depth_effort: int = 1) -> dict:
    """Prove one pre/post ``mighty_optimize`` pair end-to-end (SAT sweep).

    The per-benchmark proof obligation of
    ``benchmarks/acceptance_sat_cec.py``: the pair must come back
    ``method="sat-sweep"``, equivalent, with no counterexample.
    """
    from ..bench_circuits import build_benchmark
    from ..core import Mig
    from ..flows.mighty import mighty_optimize
    from ..verify import check_equivalence

    pre = build_benchmark(name, Mig)
    post = build_benchmark(name, Mig)
    t_opt = time.time()
    mighty_optimize(post, rounds=rounds, depth_effort=depth_effort)
    t_cec = time.time()
    result = check_equivalence(pre, post, num_random_vectors=256)
    elapsed = time.time() - t_cec

    if not result.equivalent:
        raise AssertionError(
            f"{name}: mighty_optimize broke equivalence "
            f"(output {result.failing_output}, cex {result.counterexample})"
        )
    if result.method != "sat-sweep":
        raise AssertionError(
            f"{name}: expected a sat-sweep proof, got method={result.method!r}"
        )
    if result.counterexample is not None:
        raise AssertionError(f"{name}: proof must not carry a counterexample")

    return {
        "benchmark": name,
        "num_pis": pre.num_pis,
        "num_pos": pre.num_pos,
        "size_pre": pre.num_gates,
        "size_post": post.num_gates,
        "depth_pre": pre.depth(),
        "depth_post": post.depth(),
        "method": result.method,
        "proved": True,
        "optimize_s": round(t_cec - t_opt, 3),
        "cec_s": round(elapsed, 3),
    }


# --------------------------------------------------------------------- #
# Row (de)serialisation for the flows.report dataclasses
# --------------------------------------------------------------------- #
def _metrics_to_dict(metrics) -> Optional[dict]:
    return None if metrics is None else asdict(metrics)


def _optimization_to_row(result) -> dict:
    return {
        "name": result.name,
        "mig": _metrics_to_dict(result.mig),
        "aig": _metrics_to_dict(result.aig),
        "bdd": _metrics_to_dict(result.bdd),
    }


def optimization_from_row(row: dict):
    """Rebuild an :class:`~repro.flows.optimize.OptimizationComparison`.

    Pass traces and networks are not round-tripped — the summary tables
    only consume the metrics.
    """
    from ..analysis.metrics import NetworkMetrics
    from ..flows.optimize import OptimizationComparison

    def metrics(payload):
        return None if payload is None else NetworkMetrics(**payload)

    return OptimizationComparison(
        name=row["name"],
        mig=metrics(row["mig"]),
        aig=metrics(row["aig"]),
        bdd=metrics(row["bdd"]),
    )


def _synthesis_to_row(result) -> dict:
    def metrics(m) -> dict:
        payload = asdict(m)
        payload.pop("opt_passes", None)  # PassMetrics trace: not row data
        return payload

    return {
        "name": result.name,
        "mig": metrics(result.mig),
        "aig": metrics(result.aig),
        "cst": metrics(result.cst),
    }


def synthesis_from_row(row: dict):
    """Rebuild a :class:`~repro.flows.synthesis.SynthesisComparison`."""
    from ..flows.synthesis import SynthesisComparison, SynthesisMetrics

    def metrics(payload):
        return SynthesisMetrics(**payload)

    return SynthesisComparison(
        name=row["name"],
        mig=metrics(row["mig"]),
        aig=metrics(row["aig"]),
        cst=metrics(row["cst"]),
    )


# --------------------------------------------------------------------- #
# Crash-/shard-safe row accumulation
# --------------------------------------------------------------------- #
_SAFE_NAME = re.compile(r"[^-._A-Za-z0-9]")


class RowChannel:
    """One-JSON-file-per-row result store under a shared directory.

    Writers from any process (xdist workers, separately sharded pytest
    invocations pointed at one ``REPRO_BENCH_ROWS_DIR``) write rows
    atomically; a reader sees every complete row and never a torn one.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)

    def _suite_dir(self, suite: str) -> Path:
        return self.root / _SAFE_NAME.sub("_", suite)

    def _row_path(self, suite: str, name: str) -> Path:
        return self._suite_dir(suite) / f"{_SAFE_NAME.sub('_', name)}.json"

    def write(self, suite: str, name: str, payload: dict) -> Path:
        """Atomically persist one row; returns its path."""
        path = self._row_path(suite, name)
        if not atomic_write_json(path, payload):
            raise OSError(f"cannot persist row {suite}/{name} at {path}")
        return path

    def read(self, suite: str, name: str) -> Optional[dict]:
        """One row of ``suite`` by name, or ``None`` if absent/torn."""
        payload = load_json(self._row_path(suite, name))
        return payload if isinstance(payload, dict) else None

    def delete(self, suite: str, name: str) -> bool:
        """Drop one row (idempotent); returns whether a file was removed."""
        try:
            self._row_path(suite, name).unlink()
        except OSError:
            return False
        return True

    def read_all(self, suite: str) -> Dict[str, dict]:
        """Every complete row of ``suite``, keyed by row name."""
        directory = self._suite_dir(suite)
        rows: Dict[str, dict] = {}
        if not directory.is_dir():
            return rows
        for path in sorted(directory.glob("*.json")):
            payload = load_json(path)
            if isinstance(payload, dict):
                rows[path.stem] = payload
            # torn/foreign files: skip, never crash the summary
        return rows

    def ordered(self, suite: str, order: Sequence[str]) -> List[dict]:
        """Rows of ``suite`` in canonical benchmark order.

        Rows named in ``order`` come first, in that order; rows the
        caller did not anticipate (custom benchmark subsets) follow,
        sorted by name.  Missing rows are skipped.
        """
        rows = self.read_all(suite)
        ordered: List[dict] = []
        seen = set()
        for name in order:
            key = _SAFE_NAME.sub("_", name)
            if key in rows:
                ordered.append(rows[key])
                seen.add(key)
        for key in sorted(rows):
            if key not in seen:
                ordered.append(rows[key])
        return ordered
