"""Window decomposition of one logic network for partition-parallel flows.

A *window* is a bounded, contiguous slice of a network's PO-reachable
gates, closed under the rule that every fanin of a window gate is either
the constant node, another gate of the same window, or a **frontier
pin** — a node (primary input or a gate of an *earlier* window) that the
extracted sub-network treats as a primary input.  Window **outputs** are
the gates referenced from outside the window (by a later window's gate
or by a primary output); they become the sub-network's primary outputs
and the substitution targets of the stitch phase
(:mod:`repro.parallel.window`).

Two strategies, both deterministic pure functions of ``(network
structure, spec)``:

* ``"topo"`` (default) — contiguous chunks of the PO-reachable
  topological order.  Every chunk respects the fanin rule by
  construction (a fanin precedes its fanout in the order) and the
  ``max_window_gates`` bound is exact.
* ``"levels"`` — whole level bands accumulated until the gate budget is
  reached.  A single level never contains intra-level dependencies, so
  an oversized level is split into budget-sized runs without breaking
  the fanin rule.  Level bands give the extracted sub-networks a
  "horizontal slice" shape (many shallow cones) where topo chunks give
  "vertical" cones — useful when the optimization pass benefits from
  seeing whole levels.

Windows are ordered: gates of window ``i`` only ever reference frontier
pins from windows ``< i`` (or primary inputs).  The stitch phase relies
on this to resolve every pin through its replacement map before the
window that consumes it is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.signal import CONST_NODE, node_of

__all__ = ["PartitionSpec", "Window", "partition_network"]

#: Valid partitioning strategies.
STRATEGIES = ("topo", "levels")


@dataclass(frozen=True)
class PartitionSpec:
    """Parameters of one deterministic window decomposition.

    The same spec on the same structure always yields the same windows —
    the spec is part of the determinism contract of
    :mod:`repro.parallel` (stitched results are compared across worker
    counts *for a fixed spec*).

    ``offset`` phase-shifts the window boundaries: the first chunk is
    shortened to ``max_window_gates - (offset % max_window_gates)``
    gates, so every later boundary moves by the same amount.  Gains
    trapped on one decomposition's frontiers (a window cannot rewrite
    across its own pins) become interior nodes of the shifted
    decomposition — the re-partitioning knob behind
    :func:`repro.flows.partitioned.partitioned_rewrite`'s multi-sweep
    mode.  ``offset % max_window_gates == 0`` reproduces the unshifted
    partition exactly.
    """

    max_window_gates: int = 400
    strategy: str = "topo"
    offset: int = 0

    def __post_init__(self) -> None:
        if self.max_window_gates < 1:
            raise ValueError(
                f"max_window_gates must be >= 1, got {self.max_window_gates}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} (expected one of {STRATEGIES})"
            )
        if self.offset < 0:
            raise ValueError(f"offset must be >= 0, got {self.offset}")


@dataclass
class Window:
    """One bounded slice of a network's PO-reachable gates.

    ``gates`` is in topological order (a sub-sequence of the network's
    order); ``inputs`` are the frontier pin nodes sorted by node id;
    ``outputs`` are the externally referenced gates in topological
    order.  All three hold *parent* node ids — the extraction into a
    standalone sub-network happens in :mod:`repro.parallel.window`.
    """

    index: int
    gates: List[int]
    inputs: List[int] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.gates)


def _chunk_gates(net, spec: PartitionSpec) -> List[List[int]]:
    """Group the PO-reachable gates into ordered, bounded chunks.

    The boundary phase: the *first* chunk's capacity is
    ``bound - (offset % bound)`` and every later chunk's is ``bound``,
    which shifts all downstream boundaries by the same deterministic
    amount without ever exceeding the gate budget.
    """
    order = net.topological_order()
    bound = spec.max_window_gates
    first = bound - (spec.offset % bound)
    if spec.strategy == "topo":
        cuts = list(range(first, len(order), bound))
        starts = [0] + cuts
        ends = cuts + [len(order)]
        return [order[s:e] for s, e in zip(starts, ends) if s < e]

    # "levels": accumulate whole level bands up to the budget; split a
    # single oversized level into runs (safe: no intra-level fanins).
    level = net.levels()
    bands: Dict[int, List[int]] = {}
    for gate in order:
        bands.setdefault(level[gate], []).append(gate)
    chunks: List[List[int]] = []
    current: List[int] = []
    cap = first  # shrinks only the first chunk; bound afterwards

    def _close() -> None:
        nonlocal current, cap
        chunks.append(current)
        current = []
        cap = bound

    for lvl in sorted(bands):
        band = bands[lvl]
        if len(band) > cap:
            if current:
                _close()
            position = 0
            while position < len(band):
                run = band[position : position + cap]
                position += len(run)
                current = run
                _close()
            continue
        if current and len(current) + len(band) > cap:
            _close()
        current.extend(band)
    if current:
        chunks.append(current)
    return chunks


def partition_network(net, spec: PartitionSpec = PartitionSpec()) -> List[Window]:
    """Decompose ``net`` into ordered, bounded :class:`Window` slices.

    Covers exactly the PO-reachable gates (``net.topological_order()``),
    each in exactly one window.  Dangling gates are not part of any
    window — run ``net.cleanup()`` first when full coverage of live
    gates matters (the :class:`~repro.flows.partitioned
    .PartitionedRewrite` pass does).
    """
    chunks = _chunk_gates(net, spec)
    window_of: Dict[int, int] = {}
    for index, gates in enumerate(chunks):
        for gate in gates:
            window_of[gate] = index

    windows = [Window(index=i, gates=gates) for i, gates in enumerate(chunks)]
    input_sets: List[set] = [set() for _ in windows]
    output_sets: List[set] = [set() for _ in windows]

    for index, window in enumerate(windows):
        inputs = input_sets[index]
        for gate in window.gates:
            for f in net.fanins(gate):
                fanin = node_of(f)
                if fanin == CONST_NODE:
                    continue
                home = window_of.get(fanin)
                if home == index:
                    continue
                inputs.add(fanin)
                if home is not None:
                    # A cross-window gate reference: the fanin's home
                    # window must expose it as an output.
                    output_sets[home].add(fanin)

    po_driven = net._po_refs
    for index, window in enumerate(windows):
        outputs = output_sets[index]
        for gate in window.gates:
            if gate in po_driven:
                outputs.add(gate)
        window.inputs = sorted(input_sets[index])
        # Topological order within the window (= creation order of the
        # chunk) keeps the extracted sub-network's PO list deterministic.
        window.outputs = [gate for gate in window.gates if gate in outputs]
    return windows
