"""Window decomposition of one logic network for partition-parallel flows.

A *window* is a bounded, contiguous slice of a network's PO-reachable
gates, closed under the rule that every fanin of a window gate is either
the constant node, another gate of the same window, or a **frontier
pin** — a node (primary input or a gate of an *earlier* window) that the
extracted sub-network treats as a primary input.  Window **outputs** are
the gates referenced from outside the window (by a later window's gate
or by a primary output); they become the sub-network's primary outputs
and the substitution targets of the stitch phase
(:mod:`repro.parallel.window`).

Two strategies, both deterministic pure functions of ``(network
structure, spec)``:

* ``"topo"`` (default) — contiguous chunks of the PO-reachable
  topological order.  Every chunk respects the fanin rule by
  construction (a fanin precedes its fanout in the order) and the
  ``max_window_gates`` bound is exact.
* ``"levels"`` — whole level bands accumulated until the gate budget is
  reached.  A single level never contains intra-level dependencies, so
  an oversized level is split into budget-sized runs without breaking
  the fanin rule.  Level bands give the extracted sub-networks a
  "horizontal slice" shape (many shallow cones) where topo chunks give
  "vertical" cones — useful when the optimization pass benefits from
  seeing whole levels.

Windows are ordered: gates of window ``i`` only ever reference frontier
pins from windows ``< i`` (or primary inputs).  The stitch phase relies
on this to resolve every pin through its replacement map before the
window that consumes it is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.signal import CONST_NODE, node_of

__all__ = ["PartitionSpec", "Window", "partition_network"]

#: Valid partitioning strategies.
STRATEGIES = ("topo", "levels")


@dataclass(frozen=True)
class PartitionSpec:
    """Parameters of one deterministic window decomposition.

    The same spec on the same structure always yields the same windows —
    the spec is part of the determinism contract of
    :mod:`repro.parallel` (stitched results are compared across worker
    counts *for a fixed spec*).
    """

    max_window_gates: int = 400
    strategy: str = "topo"

    def __post_init__(self) -> None:
        if self.max_window_gates < 1:
            raise ValueError(
                f"max_window_gates must be >= 1, got {self.max_window_gates}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r} (expected one of {STRATEGIES})"
            )


@dataclass
class Window:
    """One bounded slice of a network's PO-reachable gates.

    ``gates`` is in topological order (a sub-sequence of the network's
    order); ``inputs`` are the frontier pin nodes sorted by node id;
    ``outputs`` are the externally referenced gates in topological
    order.  All three hold *parent* node ids — the extraction into a
    standalone sub-network happens in :mod:`repro.parallel.window`.
    """

    index: int
    gates: List[int]
    inputs: List[int] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)

    @property
    def num_gates(self) -> int:
        return len(self.gates)


def _chunk_gates(net, spec: PartitionSpec) -> List[List[int]]:
    """Group the PO-reachable gates into ordered, bounded chunks."""
    order = net.topological_order()
    bound = spec.max_window_gates
    if spec.strategy == "topo":
        return [order[i : i + bound] for i in range(0, len(order), bound)]

    # "levels": accumulate whole level bands up to the budget; split a
    # single oversized level into runs (safe: no intra-level fanins).
    level = net.levels()
    bands: Dict[int, List[int]] = {}
    for gate in order:
        bands.setdefault(level[gate], []).append(gate)
    chunks: List[List[int]] = []
    current: List[int] = []
    for lvl in sorted(bands):
        band = bands[lvl]
        if len(band) > bound:
            if current:
                chunks.append(current)
                current = []
            chunks.extend(band[i : i + bound] for i in range(0, len(band), bound))
            continue
        if current and len(current) + len(band) > bound:
            chunks.append(current)
            current = []
        current.extend(band)
    if current:
        chunks.append(current)
    return chunks


def partition_network(net, spec: PartitionSpec = PartitionSpec()) -> List[Window]:
    """Decompose ``net`` into ordered, bounded :class:`Window` slices.

    Covers exactly the PO-reachable gates (``net.topological_order()``),
    each in exactly one window.  Dangling gates are not part of any
    window — run ``net.cleanup()`` first when full coverage of live
    gates matters (the :class:`~repro.flows.partitioned
    .PartitionedRewrite` pass does).
    """
    chunks = _chunk_gates(net, spec)
    window_of: Dict[int, int] = {}
    for index, gates in enumerate(chunks):
        for gate in gates:
            window_of[gate] = index

    windows = [Window(index=i, gates=gates) for i, gates in enumerate(chunks)]
    input_sets: List[set] = [set() for _ in windows]
    output_sets: List[set] = [set() for _ in windows]

    for index, window in enumerate(windows):
        inputs = input_sets[index]
        for gate in window.gates:
            for f in net.fanins(gate):
                fanin = node_of(f)
                if fanin == CONST_NODE:
                    continue
                home = window_of.get(fanin)
                if home == index:
                    continue
                inputs.add(fanin)
                if home is not None:
                    # A cross-window gate reference: the fanin's home
                    # window must expose it as an output.
                    output_sets[home].add(fanin)

    po_driven = net._po_refs
    for index, window in enumerate(windows):
        outputs = output_sets[index]
        for gate in window.gates:
            if gate in po_driven:
                outputs.add(gate)
        window.inputs = sorted(input_sets[index])
        # Topological order within the window (= creation order of the
        # chunk) keeps the extracted sub-network's PO list deterministic.
        window.outputs = [gate for gate in window.gates if gate in outputs]
    return windows
