"""Process-parallel execution layer: deterministic sharding over a pool.

The repository's heavyweight workloads — the Table I benchmark sweeps,
whole-corpus ``mighty_optimize``/``resyn2`` batches, the 222-class NPN
structure-database derivation, per-output final SAT calls — are
embarrassingly parallel: independent tasks over a fixed item list.  This
package provides the one orchestration substrate they all share:

* :func:`~repro.parallel.executor.plan_shards` — a deterministic shard
  planner (contiguous chunks over a cost-ordered index list);
* :func:`~repro.parallel.executor.parallel_map` — a chunked process-pool
  executor with worker warm-up and per-task metric records;
* :func:`~repro.parallel.executor.warm_worker` — preloads the import-once
  network kernels and the disk-cached NPN database so forked workers
  inherit a hot process image instead of re-deriving per task;
* :mod:`repro.parallel.partition` / :mod:`repro.parallel.window` — the
  partition-parallel layer *inside* one circuit: deterministic window
  decomposition (bounded topological chunks or level bands with
  frontier pins as window PIs/POs), extraction of windows as standalone
  sub-networks, and substitution-based stitching of optimized windows
  back into the parent (consumed by
  :class:`repro.flows.partitioned.PartitionedRewrite` and
  :func:`repro.flows.batch.optimize_large`);
* :mod:`repro.parallel.corpus` (imported separately — it pulls in the
  flow stack) — the shared corpus runner of the benchmark harness plus
  the crash-safe row channel used by the sharded Table I sweeps.

Sharding/determinism contract
-----------------------------
Results are **bit-identical to a serial run** regardless of worker
count: every task is a pure function of its item (networks cross the
process boundary by pickling, which preserves node ids exactly, and
every optimization flow is deterministic on identical structure), tasks
never share mutable state, and :func:`parallel_map` reassembles results
by original item index — OS scheduling only changes *when* a task runs,
never what it computes or where its result lands.  Parallelism is
therefore a pure wall-clock win; ``benchmarks/bench_parallel.py`` and
``tests/parallel/`` assert the contract (same node ids, sizes, depths
and CEC verdicts at 1, 2 and 4 workers).

The contract extends to **windows inside one circuit**: for a fixed
:class:`~repro.parallel.partition.PartitionSpec`, the decomposition is
a pure function of the network structure, every window job is a pure
function of its extracted sub-network, and the stitch phase replays the
per-window results serially in window order — so the stitched network
is bit-identical (node ids, fanins, primary outputs, structural
fingerprint) at 1, 2 and 4 workers.  Worker count only decides *where*
a window is optimized, never what is stitched.
``benchmarks/bench_partition.py`` and
``tests/parallel/test_partition.py`` assert the window contract
end-to-end, including per-window SAT certification.

In-order commit (the pipelined window path)
-------------------------------------------
:func:`~repro.parallel.executor.parallel_map_stream` streams lazily
produced items through the pool with bounded lookahead, and
:class:`~repro.parallel.executor.OrderedCommitQueue` turns its
completion-order result stream back into strict index-order commits.
The ordering is load-bearing, not cosmetic: stitching window *i*
substitutes nodes whose cascades rewire the fanout cones — the gates of
later windows — so the committed structure depends on commit order, and
only strict window order reproduces the serial result.  Two rules keep
the streamed path on the contract above:

1. **Commits wait for extraction.**  Every window must be extracted
   from the *pristine* network before the first commit mutates it; the
   producer holds the queue (:meth:`OrderedCommitQueue.hold`) until its
   last extraction and releases it from the generator epilogue.  From
   then on window *i* is stitched the moment *i* and all earlier
   windows have returned, overlapping with still-running workers.
2. **Commit order is window order**, whatever the completion order —
   the reorder buffer parks early-returning later windows until the
   gap closes.

Under both rules the pipelined path is bit-identical to the barrier
path (and to serial) at any worker count.

Multi-sweep boundary offsets
----------------------------
A window never rewrites across its own frontier pins, so gains sitting
on one decomposition's boundaries are invisible to it.
``PartitionSpec.offset`` phase-shifts every boundary (the first chunk
shrinks to ``bound - offset % bound`` gates), and
:func:`repro.flows.partitioned.sweep_offset` derives sweep *k*'s offset
deterministically (a golden-ratio multiple of the bound, 0 for sweep
0) — so consecutive sweeps of
``partitioned_rewrite(..., sweeps=N)`` re-partition with well-separated
boundary phases, each sweep re-optimizing the (bit-identical) structure
the previous sweep produced.  A sweep that improves nothing performs no
substitution, leaves the mutation serial untouched, and ends the loop
early.
"""

from .executor import (
    OrderedCommitQueue,
    ParallelReport,
    TaskRecord,
    default_workers,
    parallel_map,
    parallel_map_stream,
    plan_shards,
    warm_worker,
)
from .partition import PartitionSpec, Window, partition_network
from .window import StitchStats, extract_window, release_pins, stitch_window

__all__ = [
    "OrderedCommitQueue",
    "ParallelReport",
    "PartitionSpec",
    "StitchStats",
    "TaskRecord",
    "Window",
    "default_workers",
    "extract_window",
    "parallel_map",
    "parallel_map_stream",
    "partition_network",
    "plan_shards",
    "release_pins",
    "stitch_window",
    "warm_worker",
]
