"""Process-parallel execution layer: deterministic sharding over a pool.

The repository's heavyweight workloads — the Table I benchmark sweeps,
whole-corpus ``mighty_optimize``/``resyn2`` batches, the 222-class NPN
structure-database derivation, per-output final SAT calls — are
embarrassingly parallel: independent tasks over a fixed item list.  This
package provides the one orchestration substrate they all share:

* :func:`~repro.parallel.executor.plan_shards` — a deterministic shard
  planner (contiguous chunks over a cost-ordered index list);
* :func:`~repro.parallel.executor.parallel_map` — a chunked process-pool
  executor with worker warm-up and per-task metric records;
* :func:`~repro.parallel.executor.warm_worker` — preloads the import-once
  network kernels and the disk-cached NPN database so forked workers
  inherit a hot process image instead of re-deriving per task;
* :mod:`repro.parallel.corpus` (imported separately — it pulls in the
  flow stack) — the shared corpus runner of the benchmark harness plus
  the crash-safe row channel used by the sharded Table I sweeps.

Sharding/determinism contract
-----------------------------
Results are **bit-identical to a serial run** regardless of worker
count: every task is a pure function of its item (networks cross the
process boundary by pickling, which preserves node ids exactly, and
every optimization flow is deterministic on identical structure), tasks
never share mutable state, and :func:`parallel_map` reassembles results
by original item index — OS scheduling only changes *when* a task runs,
never what it computes or where its result lands.  Parallelism is
therefore a pure wall-clock win; ``benchmarks/bench_parallel.py`` and
``tests/parallel/`` assert the contract (same node ids, sizes, depths
and CEC verdicts at 1, 2 and 4 workers).
"""

from .executor import (
    ParallelReport,
    TaskRecord,
    default_workers,
    parallel_map,
    plan_shards,
    warm_worker,
)

__all__ = [
    "ParallelReport",
    "TaskRecord",
    "default_workers",
    "parallel_map",
    "plan_shards",
    "warm_worker",
]
