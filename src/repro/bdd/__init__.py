"""Reduced-Ordered BDD substrate and the BDS-style decomposition baseline."""

from .bdd import BddManager, build_output_bdds
from .decompose import decompose_to_mig

__all__ = ["BddManager", "build_output_bdds", "decompose_to_mig"]
