"""BDS-style decomposition of BDDs into a logic network.

The paper's third baseline builds canonical BDDs of the benchmark outputs
and structurally decomposes them back into a multi-level network ("BDDs
decomposed by BDS").  This module reproduces that flow:

1. build one ROBDD per output (:func:`repro.bdd.bdd.build_output_bdds`);
2. walk every BDD node once and emit a multiplexer
   ``f = v ? high : low`` for it, sharing sub-functions through the
   manager's canonicity (two outputs that share BDD nodes share logic);
3. specialise the common degenerate multiplexers into AND / OR gates
   (``v ? g : 0 = v·g``, ``v ? 1 : g = v + g`` …), which is the dominant
   simplification BDS applies before AND/OR/XOR factoring.

The emitted network is a MIG (multiplexers expand to AND/OR majority
nodes), so the standard metrics (size / depth / activity) of Table I apply
directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.mig import Mig
from ..core.signal import negate
from .bdd import BddManager, ONE, ZERO, build_output_bdds

__all__ = ["BddDecompositionStats", "decompose_to_mig"]


@dataclass
class BddDecompositionStats:
    """Summary of one BDD-decomposition run."""

    bdd_nodes: int
    network_size: int
    network_depth: int
    runtime_s: float


def decompose_to_mig(
    network,
    variable_order: Optional[List[int]] = None,
    max_nodes: int = 400_000,
):
    """Build BDDs for ``network`` and decompose them into a fresh MIG.

    Returns ``(mig, stats)``.  ``variable_order`` optionally permutes the
    primary inputs before BDD construction (a cheap stand-in for sifting;
    the default order is the network's PI order).
    """
    import sys

    start = time.perf_counter()
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 50_000))
    try:
        manager = BddManager(max_nodes=max_nodes)
        roots = build_output_bdds(manager, network, variable_order)
        return _decompose_roots(network, manager, roots, variable_order, start)
    finally:
        sys.setrecursionlimit(old_limit)


def _decompose_roots(network, manager, roots, variable_order, start):
    mig = Mig()
    mig.name = getattr(network, "name", "bdd_decomposition")
    from .bdd import structural_variable_order

    pi_names = network.pi_names()
    pi_signals = [mig.add_pi(name) for name in pi_names]
    if variable_order is None:
        pi_order = structural_variable_order(network)
        variable_order = [0] * len(pi_order)
        for level, pi_index in enumerate(pi_order):
            variable_order[pi_index] = level
    # variable_order[k] is the BDD level of PI k → invert the mapping.
    var_to_signal = {variable_order[k]: pi_signals[k] for k in range(len(pi_signals))}

    cache: Dict[int, int] = {ZERO: mig.constant(False), ONE: mig.constant(True)}

    def build(node: int) -> int:
        if node in cache:
            return cache[node]
        var = manager.variable_of(node)
        sel = var_to_signal[var]
        low = build(manager.low(node))
        high = build(manager.high(node))
        if low == mig.constant(False):
            result = mig.and_(sel, high)
        elif low == mig.constant(True):
            result = mig.or_(negate(sel), high)
        elif high == mig.constant(False):
            result = mig.and_(negate(sel), low)
        elif high == mig.constant(True):
            result = mig.or_(sel, low)
        elif low == negate(high):
            # XOR/XNOR pattern: v ? h : h'  =  v XNOR h' = v XOR low
            result = mig.xor_(sel, low)
        else:
            result = mig.mux_(sel, high, low)
        cache[node] = result
        return result

    for root, name in zip(roots, network.po_names()):
        mig.add_po(build(root), name)

    stats = BddDecompositionStats(
        bdd_nodes=manager.size(roots),
        network_size=mig.num_gates,
        network_depth=mig.depth(),
        runtime_s=time.perf_counter() - start,
    )
    return mig, stats
