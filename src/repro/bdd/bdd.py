"""Reduced-Ordered Binary Decision Diagrams (ROBDDs).

The third comparison point of Table I is "BDDs decomposed by the BDS tool".
This module provides the canonical-BDD substrate: a manager with a unique
table, complemented else-edges disabled for simplicity (plain canonical
nodes), the ``ite`` operator with memoisation, and variable-reordering by
sifting.  The BDS-style structural decomposition back into a logic network
lives in :mod:`repro.bdd.decompose`.

BDD nodes are integers indexing into the manager's node arrays; the two
terminals are ``ZERO = 0`` and ``ONE = 1``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.signal import is_complemented, node_of

__all__ = ["BddManager", "build_output_bdds", "structural_variable_order"]

ZERO = 0
ONE = 1


class BddManager:
    """A small ROBDD manager (unique table + memoised ITE)."""

    def __init__(self, max_nodes: int = 2_000_000) -> None:
        # Parallel arrays: variable index, low child, high child.
        self._var: List[int] = [10**9, 10**9]
        self._low: List[int] = [ZERO, ONE]
        self._high: List[int] = [ZERO, ONE]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._num_vars = 0
        self._max_nodes = max_nodes

    # ------------------------------------------------------------------ #
    # Basic structure
    # ------------------------------------------------------------------ #
    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_nodes(self) -> int:
        """Number of allocated decision nodes (excluding the two terminals)."""
        return len(self._var) - 2

    def zero(self) -> int:
        return ZERO

    def one(self) -> int:
        return ONE

    def var(self, index: int) -> int:
        """Return (creating if needed) the BDD for variable ``index``."""
        while self._num_vars <= index:
            self._num_vars += 1
        return self._make_node(index, ZERO, ONE)

    def nvar(self, index: int) -> int:
        return self.not_(self.var(index))

    def is_terminal(self, node: int) -> bool:
        return node in (ZERO, ONE)

    def variable_of(self, node: int) -> int:
        return self._var[node]

    def low(self, node: int) -> int:
        return self._low[node]

    def high(self, node: int) -> int:
        return self._high[node]

    def _make_node(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        if len(self._var) >= self._max_nodes:
            raise MemoryError("BDD manager node limit exceeded")
        node = len(self._var)
        self._var.append(var)
        self._low.append(low)
        self._high.append(high)
        self._unique[key] = node
        return node

    # ------------------------------------------------------------------ #
    # Boolean operations
    # ------------------------------------------------------------------ #
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` (the universal BDD operator)."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(
            self._var[f],
            self._var[g] if not self.is_terminal(g) else 10**9,
            self._var[h] if not self.is_terminal(h) else 10**9,
        )
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._make_node(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if self.is_terminal(node) or self._var[node] != var:
            return node, node
        return self._low[node], self._high[node]

    def not_(self, f: int) -> int:
        return self.ite(f, ZERO, ONE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, ONE, g)

    def xor_(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def maj_(self, f: int, g: int, h: int) -> int:
        return self.or_(self.and_(f, g), self.and_(h, self.or_(f, g)))

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def evaluate(self, node: int, assignment: Sequence[bool]) -> bool:
        """Evaluate the function of ``node`` for a variable assignment."""
        current = node
        while not self.is_terminal(current):
            var = self._var[current]
            current = self._high[current] if assignment[var] else self._low[current]
        return current == ONE

    def size(self, roots: Sequence[int]) -> int:
        """Number of distinct decision nodes reachable from ``roots``."""
        seen = set()
        stack = [r for r in roots if not self.is_terminal(r)]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for child in (self._low[node], self._high[node]):
                if not self.is_terminal(child) and child not in seen:
                    stack.append(child)
        return len(seen)

    def support(self, node: int) -> List[int]:
        """Variables the function of ``node`` depends on."""
        seen = set()
        variables = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if self.is_terminal(current) or current in seen:
                continue
            seen.add(current)
            variables.add(self._var[current])
            stack.append(self._low[current])
            stack.append(self._high[current])
        return sorted(variables)


def structural_variable_order(network) -> List[int]:
    """Interleaving variable order: PIs sorted by first use in a DFS from the outputs.

    This classic static-ordering heuristic keeps related operand bits close
    together (e.g. ``a_i`` next to ``b_i`` for adders), which is essential
    for the BDD baseline not to blow up on arithmetic benchmarks.
    """
    pi_rank = {node: index for index, node in enumerate(network.pi_nodes())}
    order: List[int] = []
    seen_pis = set()
    visited = set()
    for po in network.po_signals():
        stack = [node_of(po)]
        while stack:
            node = stack.pop()
            if node in visited:
                continue
            visited.add(node)
            if node in pi_rank:
                if node not in seen_pis:
                    seen_pis.add(node)
                    order.append(pi_rank[node])
                continue
            try:
                fanins = network.fanins(node)
            except ValueError:
                continue
            for f in fanins:
                stack.append(node_of(f))
    for node, rank in pi_rank.items():
        if node not in seen_pis:
            order.append(rank)
    return order


def build_output_bdds(
    manager: BddManager, network, variable_order: Optional[List[int]] = None
) -> List[int]:
    """Build one BDD per primary output of a MIG / AIG-like network.

    The network must expose ``pi_nodes`` / ``topological_order`` /
    ``fanins`` / ``po_signals`` with the integer-signal convention of
    :mod:`repro.core.signal`.  Majority nodes (three fanins) and AND nodes
    (two fanins) are both supported.  ``variable_order[k]`` gives the BDD
    level assigned to the ``k``-th primary input; by default the
    structural interleaving order is used.
    """
    if variable_order is None:
        pi_order = structural_variable_order(network)
        variable_order = [0] * len(pi_order)
        for level, pi_index in enumerate(pi_order):
            variable_order[pi_index] = level
    node_bdds: Dict[int, int] = {0: manager.zero()}
    for index, node in enumerate(network.pi_nodes()):
        node_bdds[node] = manager.var(variable_order[index])
    for node in network.topological_order():
        fanins = network.fanins(node)
        operands = []
        for f in fanins:
            b = node_bdds[node_of(f)]
            operands.append(manager.not_(b) if is_complemented(f) else b)
        if len(operands) == 3:
            node_bdds[node] = manager.maj_(*operands)
        elif len(operands) == 2:
            node_bdds[node] = manager.and_(*operands)
        else:
            raise ValueError(f"unsupported fanin count {len(operands)}")
    outputs = []
    for po in network.po_signals():
        b = node_bdds[node_of(po)]
        outputs.append(manager.not_(b) if is_complemented(po) else b)
    return outputs
